/**
 * @file
 * Sweep-level hazard tests: the hazard axis expands like every other
 * axis, jobs=1 and jobs=4 campaigns with hazards on every axis are
 * bitwise-identical, and the CSV/table hazard column appears exactly
 * when a campaign sweeps a non-"none" hazard — so hazard-free
 * campaigns keep their historical byte layout.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/csv.hh"
#include "common/logging.hh"
#include "experiments/sweep.hh"

namespace hipster
{
namespace
{

SweepSpec
hazardSweepSpec()
{
    SweepSpec spec;
    spec.workloads = {"memcached"};
    spec.platforms = {"juno"};
    spec.traces = {"diurnal", "flashcrowd:0.2,0.9,20,5,10"};
    spec.policies = {"hipster-in:learn=20", "static-big"};
    spec.hazards = {"none", "hazard:thermal:tdp_cap=0.6,tau=10s",
                    "hazard:nodefail:mtbf=30s,mttr=10s",
                    "hazard:dvfs-lag:drop=0.2+interference:burst=2"};
    spec.seeds = 2;
    spec.masterSeed = 5;
    spec.duration = 45.0;
    return spec;
}

std::string
runsCsv(const SweepResults &results)
{
    std::ostringstream out;
    CsvWriter csv(out);
    writeRunsCsv(csv, results);
    return out.str();
}

std::string
aggregateCsv(const SweepResults &results)
{
    std::ostringstream out;
    CsvWriter csv(out);
    writeAggregateCsv(csv, results);
    return out.str();
}

TEST(HazardSweep, ExpansionPutsHazardBetweenPolicyAndSeed)
{
    const SweepEngine engine(hazardSweepSpec());
    const auto jobs = engine.expandJobs();
    // 1 workload x 1 platform x 2 traces x 2 policies x 4 hazards x
    // 2 seeds.
    ASSERT_EQ(jobs.size(), 32u);
    EXPECT_EQ(jobs[0].hazard, "none");
    EXPECT_EQ(jobs[0].seedIndex, 0u);
    EXPECT_EQ(jobs[1].hazard, "none");
    EXPECT_EQ(jobs[1].seedIndex, 1u);
    EXPECT_EQ(jobs[2].hazard, "hazard:thermal:tdp_cap=0.6,tau=10s");
    // Common random numbers: every cell sees the same seed set.
    EXPECT_EQ(jobs[0].seed, jobs[2].seed);
    // The cell index advances with the hazard, not the seed.
    EXPECT_EQ(jobs[0].cell, jobs[1].cell);
    EXPECT_NE(jobs[0].cell, jobs[2].cell);
}

TEST(HazardSweep, ParallelAndSerialAreBitwiseIdentical)
{
    const SweepEngine engine(hazardSweepSpec());
    const SweepResults serial = engine.run(1);
    const SweepResults parallel = engine.run(4);
    EXPECT_EQ(runsCsv(serial), runsCsv(parallel));
    EXPECT_EQ(aggregateCsv(serial), aggregateCsv(parallel));
    EXPECT_EQ(serial.runs.size(), 32u);
    EXPECT_EQ(serial.cells.size(), 16u);
}

TEST(HazardSweep, HazardColumnAppearsOnlyWhenSwept)
{
    SweepSpec withHazards = hazardSweepSpec();
    withHazards.traces = {"diurnal"};
    withHazards.policies = {"static-big"};
    withHazards.hazards = {"none", "hazard:nodefail:mtbf=30s,mttr=10s"};
    withHazards.seeds = 1;
    const SweepResults hazarded = SweepEngine(withHazards).run(1);
    EXPECT_NE(runsCsv(hazarded).find(",hazard,"), std::string::npos);
    EXPECT_NE(aggregateCsv(hazarded).find(",hazard,"),
              std::string::npos);

    SweepSpec clean = withHazards;
    clean.hazards = {"none"};
    const SweepResults plain = SweepEngine(clean).run(1);
    EXPECT_EQ(runsCsv(plain).find("hazard"), std::string::npos);
    EXPECT_EQ(aggregateCsv(plain).find("hazard"), std::string::npos);
}

TEST(HazardSweep, InvalidHazardAxisFailsBeforeAnyRun)
{
    SweepSpec bad = hazardSweepSpec();
    bad.hazards = {"hazard:meteor"};
    EXPECT_THROW(SweepEngine{bad}, FatalError);

    SweepSpec empty = hazardSweepSpec();
    empty.hazards = {};
    EXPECT_THROW(SweepEngine{empty}, FatalError);
}

} // namespace
} // namespace hipster
