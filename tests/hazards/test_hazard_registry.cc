/**
 * @file
 * Grammar and catalog tests for the hazard registry — the sixth
 * registry-backed spec axis. Focus: the `hazard:` prefix and '+'
 * composition grammar, aliases, the "none" no-op rules, fail-fast
 * catalog-enumerating errors (including the stage-naming unknown-key
 * message), and spec-aware CLI list splitting.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "hazards/hazard_registry.hh"

namespace hipster
{
namespace
{

std::string
errorOf(const std::string &spec)
{
    try {
        validateHazardSpec(spec);
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

TEST(HazardRegistryCatalog, BuiltinsAndAliasesAreRegistered)
{
    const HazardRegistry &registry = HazardRegistry::instance();
    for (const char *name :
         {"thermal", "dvfs-lag", "interference", "nodefail"})
        EXPECT_TRUE(registry.has(name)) << name;
    for (const char *alias :
         {"throttle", "dvfs", "noisy-neighbor", "crash"})
        EXPECT_TRUE(registry.has(alias)) << alias;
    EXPECT_FALSE(registry.has("meteor"));
    EXPECT_GE(registry.entries().size(), 4u);
}

TEST(HazardRegistryCatalog, CatalogTextListsEverything)
{
    const std::string catalog =
        HazardRegistry::instance().catalogText();
    EXPECT_NE(catalog.find("none"), std::string::npos);
    for (const HazardInfo &e : HazardRegistry::instance().entries()) {
        EXPECT_NE(catalog.find("hazard:" + e.name), std::string::npos)
            << e.name;
        for (const std::string &alias : e.aliases)
            EXPECT_NE(catalog.find("(alias: " + alias + ")"),
                      std::string::npos)
                << alias;
        for (const SpecParamInfo &p : e.params)
            EXPECT_NE(catalog.find(p.key + "="), std::string::npos)
                << e.name << ":" << p.key;
    }
}

TEST(HazardRegistryGrammar, NoneIsTheNullEngine)
{
    EXPECT_TRUE(isNoneHazard(""));
    EXPECT_TRUE(isNoneHazard("none"));
    EXPECT_TRUE(isNoneHazard("hazard:none"));
    EXPECT_FALSE(isNoneHazard("thermal"));
    EXPECT_FALSE(isNoneHazard("hazard:thermal"));
    EXPECT_EQ(makeHazardEngine("none", 1), nullptr);
    EXPECT_EQ(makeHazardEngine("", 1), nullptr);
    EXPECT_EQ(makeHazardEngine("hazard:none", 1), nullptr);
}

TEST(HazardRegistryGrammar, CanonicalLabelEnforcesThePrefix)
{
    EXPECT_EQ(canonicalHazardLabel("none"), "none");
    EXPECT_EQ(canonicalHazardLabel("hazard:none"), "none");
    EXPECT_EQ(canonicalHazardLabel("thermal"), "hazard:thermal");
    EXPECT_EQ(canonicalHazardLabel("hazard:thermal"), "hazard:thermal");
    EXPECT_EQ(canonicalHazardLabel("thermal+interference:burst=2"),
              "hazard:thermal+interference:burst=2");
}

TEST(HazardRegistryGrammar, BuildsComposedEnginesInSpecOrder)
{
    const auto engine = makeHazardEngine(
        "hazard:thermal:tdp_cap=0.7+interference:burst=2", 7);
    ASSERT_NE(engine, nullptr);
    ASSERT_EQ(engine->stages().size(), 2u);
    EXPECT_EQ(engine->stages()[0]->name(), "thermal");
    EXPECT_EQ(engine->stages()[1]->name(), "interference");
    EXPECT_EQ(engine->spec(),
              "hazard:thermal:tdp_cap=0.7+interference:burst=2");
}

TEST(HazardRegistryGrammar, AliasesResolveToTheFamily)
{
    const auto engine = makeHazardEngine("hazard:throttle", 7);
    ASSERT_NE(engine, nullptr);
    ASSERT_EQ(engine->stages().size(), 1u);
    EXPECT_EQ(engine->stages()[0]->name(), "thermal");
    // An alias of an already-used family is still a duplicate.
    EXPECT_THROW(validateHazardSpec("hazard:thermal+throttle"),
                 FatalError);
}

TEST(HazardRegistryErrors, UnknownHazardEnumeratesTheCatalog)
{
    const std::string error = errorOf("hazard:meteor");
    EXPECT_NE(error.find("unknown hazard 'meteor'"), std::string::npos)
        << error;
    for (const HazardInfo &e : HazardRegistry::instance().entries())
        EXPECT_NE(error.find(e.name), std::string::npos) << error;
    EXPECT_NE(error.find("none"), std::string::npos) << error;
}

TEST(HazardRegistryErrors, NoneCannotBeComposed)
{
    const std::string error = errorOf("hazard:none+thermal");
    EXPECT_NE(error.find("'none' cannot be composed"),
              std::string::npos)
        << error;
    EXPECT_THROW(validateHazardSpec("hazard:thermal+none"),
                 FatalError);
}

TEST(HazardRegistryErrors, DuplicateFamilyIsRejected)
{
    const std::string error = errorOf("hazard:thermal+thermal");
    EXPECT_NE(error.find("more than once"), std::string::npos)
        << error;
}

TEST(HazardRegistryErrors, UnknownKeyNamesTheRejectingStage)
{
    // In a composed spec the unknown-key error must say which stage
    // refused the key — 'burst' is an interference parameter, and the
    // thermal stage must say so when it gets it.
    const std::string error =
        errorOf("hazard:thermal:burst=2+interference");
    EXPECT_NE(error.find("unknown key 'burst'"), std::string::npos)
        << error;
    EXPECT_NE(error.find("rejected by hazard 'thermal'"),
              std::string::npos)
        << error;
    // The schema of the rejecting stage is enumerated.
    EXPECT_NE(error.find("tdp_cap="), std::string::npos) << error;
}

TEST(HazardRegistryErrors, SchemaRangesAreEnforced)
{
    EXPECT_THROW(validateHazardSpec("hazard:thermal:tdp_cap=99"),
                 FatalError);
    EXPECT_THROW(validateHazardSpec("hazard:thermal:steps=1.5"),
                 FatalError);
    EXPECT_THROW(validateHazardSpec("hazard:nodefail:reboot=2"),
                 FatalError);
    EXPECT_THROW(validateHazardSpec("hazard:dvfs-lag:drop=1.5"),
                 FatalError);
    EXPECT_THROW(validateHazardSpec("hazard:interference:on=0"),
                 FatalError);
    // Time suffixes normalize like every other axis.
    EXPECT_NO_THROW(validateHazardSpec(
        "hazard:nodefail:mtbf=600s,mttr=60000ms"));
    EXPECT_NO_THROW(
        validateHazardSpec("hazard:dvfs-lag:latency=5ms"));
}

TEST(HazardRegistrySplit, ListSplittingIsSpecAware)
{
    // ';' always separates; ',' separates only before a head.
    const auto simple = splitHazardList("none;hazard:thermal");
    ASSERT_EQ(simple.size(), 2u);
    EXPECT_EQ(simple[0], "none");
    EXPECT_EQ(simple[1], "hazard:thermal");

    // key=value commas inside a spec survive.
    const auto params = splitHazardList(
        "hazard:thermal:tdp_cap=0.8,tau=30s,hazard:nodefail:mtbf=60s");
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0], "hazard:thermal:tdp_cap=0.8,tau=30s");
    EXPECT_EQ(params[1], "hazard:nodefail:mtbf=60s");

    // Bare heads and 'none' also start a new spec after a comma.
    const auto bare = splitHazardList("none,thermal,crash");
    ASSERT_EQ(bare.size(), 3u);
    EXPECT_EQ(bare[1], "thermal");
    EXPECT_EQ(bare[2], "crash");
}

} // namespace
} // namespace hipster
