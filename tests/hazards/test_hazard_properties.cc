/**
 * @file
 * Property tests for the hazard engine: event streams are pure
 * functions of the seed (deterministic, query-order independent,
 * monotone in time), composed hazards commute bitwise because stage
 * streams are keyed by the family name, `hazard:none` runs are
 * bit-identical to hazard-free runs, and nodefail actually blanks
 * the failed intervals.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/experiment_spec.hh"
#include "hazards/hazard_registry.hh"

namespace hipster
{
namespace
{

/** FNV-1a over raw bytes. */
std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t hash)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
hashDouble(double value, std::uint64_t hash)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(&bits, sizeof(bits), hash);
}

/** Bitwise fingerprint of a whole run: summary + the per-interval
 * fields the hazards can move. */
std::uint64_t
runFingerprint(const ExperimentResult &result)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = hashDouble(result.summary.qosGuarantee, h);
    h = hashDouble(result.summary.energy, h);
    h = hashDouble(result.summary.meanPower, h);
    h = hashDouble(result.summary.meanThroughput, h);
    h = fnv1a(&result.migrations, sizeof(result.migrations), h);
    h = fnv1a(&result.dvfsTransitions, sizeof(result.dvfsTransitions),
              h);
    for (std::size_t i = 0; i < result.series.size(); ++i) {
        const IntervalMetrics m = result.series[i];
        h = hashDouble(m.tailLatency, h);
        h = hashDouble(m.power, h);
        h = hashDouble(m.throughput, h);
        h = hashDouble(m.config.bigFreq, h);
        h = hashDouble(m.config.smallFreq, h);
        h = fnv1a(&m.config.nBig, sizeof(m.config.nBig), h);
        h = fnv1a(&m.config.nSmall, sizeof(m.config.nSmall), h);
    }
    return h;
}

ExperimentResult
runWithHazard(const std::string &hazard, std::uint64_t seed = 11,
              const std::string &trace = "diurnal")
{
    ExperimentSpec spec;
    spec.workload = "memcached";
    spec.platform = "juno";
    spec.trace = trace;
    spec.policy = "hipster-in:learn=30";
    spec.hazard = hazard;
    spec.duration = 90.0;
    spec.seed = seed;
    return spec.run();
}

/** The merged per-interval effects of a freshly built engine over
 * `n` one-second intervals, with a flat synthetic power feedback. */
std::vector<HazardEffects>
effectStream(const std::string &spec, std::uint64_t seed, std::size_t n)
{
    auto engine = makeHazardEngine(spec, seed);
    engine->bind(12.0);
    std::vector<HazardEffects> fx;
    for (std::size_t k = 0; k < n; ++k) {
        fx.push_back(engine->intervalEffects(
            k, static_cast<Seconds>(k), 1.0));
        engine->observePower(fx.back().down ? 0.0 : 10.0, 1.0);
    }
    return fx;
}

bool
sameEffects(const HazardEffects &a, const HazardEffects &b)
{
    return a.down == b.down && a.reboot == b.reboot &&
           a.oppCapSteps == b.oppCapSteps &&
           a.dvfsLatency == b.dvfsLatency &&
           a.dvfsDenied == b.dvfsDenied && a.pressure == b.pressure;
}

TEST(HazardTimelineProperties, SwitchesAreSeedDeterministic)
{
    HazardTimeline a(42, 60.0, 20.0);
    HazardTimeline b(42, 60.0, 20.0);
    a.activeAt(500.0);
    b.activeAt(500.0);
    EXPECT_EQ(a.switches(), b.switches());
    EXPECT_FALSE(a.switches().empty());

    HazardTimeline c(43, 60.0, 20.0);
    c.activeAt(500.0);
    EXPECT_NE(a.switches(), c.switches());
}

TEST(HazardTimelineProperties, SwitchesAreStrictlyIncreasing)
{
    HazardTimeline timeline(7, 30.0, 10.0);
    timeline.activeAt(2000.0);
    const std::vector<Seconds> &switches = timeline.switches();
    ASSERT_GE(switches.size(), 2u);
    for (std::size_t i = 1; i < switches.size(); ++i)
        EXPECT_LT(switches[i - 1], switches[i]);
}

TEST(HazardTimelineProperties, StateIsQueryOrderIndependent)
{
    // A far-future query first, then early lookups, must agree with
    // a fresh timeline queried in time order: the switch times are a
    // pure function of the seed, never of the query pattern.
    HazardTimeline scattered(99, 45.0, 15.0);
    HazardTimeline ordered(99, 45.0, 15.0);
    scattered.activeAt(900.0);
    for (Seconds t = 0.0; t < 900.0; t += 1.0)
        EXPECT_EQ(scattered.activeAt(t), ordered.activeAt(t)) << t;
}

TEST(HazardTimelineProperties, ResetReproducesTheStream)
{
    HazardTimeline timeline(5, 20.0, 20.0);
    timeline.activeAt(300.0);
    const std::vector<Seconds> before = timeline.switches();
    timeline.reset();
    timeline.activeAt(300.0);
    EXPECT_EQ(timeline.switches(), before);
}

TEST(HazardEngineProperties, EffectStreamsAreSeedDeterministic)
{
    const char *spec =
        "hazard:nodefail:mtbf=40s,mttr=15s+dvfs-lag:drop=0.2"
        "+interference:burst=1,on=10s,off=20s";
    const auto a = effectStream(spec, 1234, 300);
    const auto b = effectStream(spec, 1234, 300);
    for (std::size_t k = 0; k < a.size(); ++k)
        EXPECT_TRUE(sameEffects(a[k], b[k])) << "interval " << k;

    // A different engine seed moves the streams.
    const auto c = effectStream(spec, 1235, 300);
    bool differs = false;
    for (std::size_t k = 0; k < a.size(); ++k)
        differs |= !sameEffects(a[k], c[k]);
    EXPECT_TRUE(differs);
}

TEST(HazardEngineProperties, ComposedStagesCommuteBitwise)
{
    // Stage streams are keyed by the family *name*, so the composed
    // effects are independent of spec order.
    const auto ab = effectStream(
        "hazard:dvfs-lag:drop=0.3+interference:burst=2,on=15s,off=30s",
        777, 400);
    const auto ba = effectStream(
        "hazard:interference:burst=2,on=15s,off=30s+dvfs-lag:drop=0.3",
        777, 400);
    for (std::size_t k = 0; k < ab.size(); ++k)
        EXPECT_TRUE(sameEffects(ab[k], ba[k])) << "interval " << k;
}

TEST(HazardEngineProperties, ComposedRunsCommuteBitwise)
{
    // End-to-end: the full closed loop under a+b equals b+a bitwise.
    const auto ab = runWithHazard(
        "hazard:thermal:tdp_cap=0.6+interference:burst=2,on=10s,off=20s");
    const auto ba = runWithHazard(
        "hazard:interference:burst=2,on=10s,off=20s+thermal:tdp_cap=0.6");
    EXPECT_EQ(runFingerprint(ab), runFingerprint(ba));
}

TEST(HazardEngineProperties, NoneIsBitwiseIdenticalToNoHazard)
{
    ExperimentSpec bare;
    bare.workload = "memcached";
    bare.platform = "juno";
    bare.trace = "diurnal";
    bare.policy = "hipster-in:learn=30";
    bare.duration = 90.0;
    bare.seed = 11;
    const auto withoutAxis = bare.run();
    const auto withNone = runWithHazard("none");
    const auto withPrefixedNone = runWithHazard("hazard:none");
    EXPECT_EQ(runFingerprint(withoutAxis), runFingerprint(withNone));
    EXPECT_EQ(runFingerprint(withoutAxis),
              runFingerprint(withPrefixedNone));
}

TEST(HazardEngineProperties, HazardsActuallyChangeTheRun)
{
    const auto clean = runWithHazard("none");
    for (const char *hazard :
         {"hazard:thermal:tdp_cap=0.5,tau=10s",
          "hazard:dvfs-lag:latency=50ms,drop=0.3",
          "hazard:interference:burst=3,on=20s,off=20s",
          "hazard:nodefail:mtbf=30s,mttr=10s"}) {
        const auto hazarded = runWithHazard(hazard);
        EXPECT_NE(runFingerprint(clean), runFingerprint(hazarded))
            << hazard;
    }
}

TEST(HazardEngineProperties, NodefailBlanksDownIntervals)
{
    const auto result = runWithHazard(
        "hazard:nodefail:mtbf=30s,mttr=15s", /*seed=*/3);
    std::size_t downIntervals = 0;
    for (std::size_t i = 0; i < result.series.size(); ++i) {
        const IntervalMetrics m = result.series[i];
        if (m.power == 0.0) {
            ++downIntervals;
            EXPECT_DOUBLE_EQ(m.throughput, 0.0);
            EXPECT_DOUBLE_EQ(m.energy, 0.0);
            EXPECT_DOUBLE_EQ(m.offeredLoad, 0.0);
        }
    }
    // With MTBF 30 s over 90 s, failures are all but certain.
    EXPECT_GT(downIntervals, 0u);
    EXPECT_LT(downIntervals, result.series.size());
}

TEST(HazardEngineProperties, ThermalThrottlesAndReleasesWithPower)
{
    // Sustained power over the budget ramps the OPP cap up to the
    // step limit; cooling off releases it again, one step at a time.
    auto engine =
        makeHazardEngine("hazard:thermal:tdp_cap=0.5,tau=5s,steps=4", 1);
    engine->bind(12.0); // budget = 6 W
    std::uint32_t peak = 0;
    for (std::size_t k = 0; k < 60; ++k) {
        const HazardEffects fx = engine->intervalEffects(
            k, static_cast<Seconds>(k), 1.0);
        peak = std::max(peak, fx.oppCapSteps);
        engine->observePower(10.0, 1.0); // target 10/6 > 1: heats up
    }
    EXPECT_EQ(peak, 4u);
    for (std::size_t k = 60; k < 160; ++k)
        engine->observePower(0.5, 1.0); // cools far below release
    const HazardEffects cooled =
        engine->intervalEffects(160, 160.0, 1.0);
    EXPECT_EQ(cooled.oppCapSteps, 0u);
}

} // namespace
} // namespace hipster
