/**
 * @file
 * Tests for load bucketing, the QoS-guarantee window and run
 * summaries.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "monitor/metrics.hh"
#include "monitor/qos_monitor.hh"

namespace hipster
{
namespace
{

TEST(LoadBucketQuantizer, FivePercentBuckets)
{
    LoadBucketQuantizer q(5.0);
    EXPECT_EQ(q.bucketCount(), 20);
    EXPECT_EQ(q.bucket(0.0), 0);
    EXPECT_EQ(q.bucket(0.049), 0);
    EXPECT_EQ(q.bucket(0.05), 1);
    EXPECT_EQ(q.bucket(0.51), 10);
    EXPECT_EQ(q.bucket(0.999), 19);
    EXPECT_EQ(q.bucket(1.0), 19);  // clamped
    EXPECT_EQ(q.bucket(1.25), 19); // overload clamps to top
}

TEST(LoadBucketQuantizer, OddWidthsCeilBucketCount)
{
    LoadBucketQuantizer q(3.0);
    EXPECT_EQ(q.bucketCount(), 34);
    LoadBucketQuantizer q9(9.0);
    EXPECT_EQ(q9.bucketCount(), 12);
}

TEST(LoadBucketQuantizer, BucketCenters)
{
    LoadBucketQuantizer q(10.0);
    EXPECT_NEAR(q.bucketCenter(0), 0.05, 1e-9);
    EXPECT_NEAR(q.bucketCenter(9), 0.95, 1e-9);
}

TEST(LoadBucketQuantizer, NegativeLoadClampsToZero)
{
    LoadBucketQuantizer q(5.0);
    EXPECT_EQ(q.bucket(-0.3), 0);
}

TEST(LoadBucketQuantizer, RejectsBadWidth)
{
    EXPECT_THROW(LoadBucketQuantizer(0.0), FatalError);
    EXPECT_THROW(LoadBucketQuantizer(150.0), FatalError);
}

TEST(QosGuaranteeWindow, TracksFractionMet)
{
    QosGuaranteeWindow window(4);
    EXPECT_DOUBLE_EQ(window.guarantee(), 1.0); // optimistic start
    window.add(true);
    window.add(false);
    EXPECT_DOUBLE_EQ(window.guarantee(), 0.5);
    window.add(true);
    window.add(true);
    EXPECT_DOUBLE_EQ(window.guarantee(), 0.75);
}

TEST(QosGuaranteeWindow, SlidesOldSamplesOut)
{
    QosGuaranteeWindow window(2);
    window.add(false);
    window.add(false);
    EXPECT_DOUBLE_EQ(window.guarantee(), 0.0);
    window.add(true);
    window.add(true);
    EXPECT_DOUBLE_EQ(window.guarantee(), 1.0);
}

TEST(QosGuaranteeWindow, ClearResets)
{
    QosGuaranteeWindow window(10);
    window.add(false);
    window.clear();
    EXPECT_EQ(window.size(), 0u);
    EXPECT_DOUBLE_EQ(window.guarantee(), 1.0);
}

TEST(QosGuaranteeWindow, RejectsZeroWindow)
{
    EXPECT_THROW(QosGuaranteeWindow(0), FatalError);
}

IntervalMetrics
metric(Millis tail, Millis target, Watts power = 2.0,
       std::uint32_t migrations = 0)
{
    IntervalMetrics m;
    m.begin = 0.0;
    m.end = 1.0;
    m.tailLatency = tail;
    m.qosTarget = target;
    m.power = power;
    m.energy = power * 1.0;
    m.migrations = migrations;
    m.throughput = 100.0;
    return m;
}

TEST(IntervalMetrics, QosRatioAndViolation)
{
    EXPECT_FALSE(metric(8.0, 10.0).qosViolated());
    EXPECT_TRUE(metric(12.0, 10.0).qosViolated());
    EXPECT_NEAR(metric(12.0, 10.0).qosRatio(), 1.2, 1e-9);
}

TEST(RunSummary, EmptySeries)
{
    const RunSummary s =
        RunSummary::fromSeries(std::vector<IntervalMetrics>{});
    EXPECT_EQ(s.intervals, 0u);
    EXPECT_DOUBLE_EQ(s.qosGuarantee, 0.0);
}

TEST(RunSummary, GuaranteeAndTardiness)
{
    std::vector<IntervalMetrics> series = {
        metric(5.0, 10.0),  // met
        metric(15.0, 10.0), // violated, ratio 1.5
        metric(25.0, 10.0), // violated, ratio 2.5
        metric(9.0, 10.0),  // met
    };
    const RunSummary s = RunSummary::fromSeries(series);
    EXPECT_EQ(s.intervals, 4u);
    EXPECT_DOUBLE_EQ(s.qosGuarantee, 0.5);
    // Tardiness averages only the violating samples: (1.5+2.5)/2.
    EXPECT_NEAR(s.qosTardiness, 2.0, 1e-9);
}

TEST(RunSummary, TardinessZeroWhenAllMet)
{
    const RunSummary s =
        RunSummary::fromSeries({metric(1.0, 10.0), metric(2.0, 10.0)});
    EXPECT_DOUBLE_EQ(s.qosTardiness, 0.0);
    EXPECT_DOUBLE_EQ(s.qosGuarantee, 1.0);
}

TEST(RunSummary, EnergyAndPowerAggregation)
{
    const RunSummary s = RunSummary::fromSeries(
        {metric(1.0, 10.0, 2.0), metric(1.0, 10.0, 4.0)});
    EXPECT_DOUBLE_EQ(s.energy, 6.0);
    EXPECT_DOUBLE_EQ(s.meanPower, 3.0);
}

TEST(RunSummary, EnergyReduction)
{
    RunSummary base, ours;
    base.energy = 100.0;
    ours.energy = 85.0;
    EXPECT_NEAR(ours.energyReductionVs(base), 0.15, 1e-9);
    RunSummary zero;
    EXPECT_DOUBLE_EQ(ours.energyReductionVs(zero), 0.0);
}

TEST(RunSummary, MigrationAndBatchAggregation)
{
    auto a = metric(1.0, 10.0, 2.0, 3);
    auto b = metric(1.0, 10.0, 2.0, 2);
    b.batchPresent = true;
    b.batchBigIps = 1e9;
    b.batchSmallIps = 5e8;
    const RunSummary s = RunSummary::fromSeries({a, b});
    EXPECT_EQ(s.migrations, 5u);
    // Batch IPS averaged over the batch-present intervals only.
    EXPECT_DOUBLE_EQ(s.meanBatchIps, 1.5e9);
}

} // namespace
} // namespace hipster
