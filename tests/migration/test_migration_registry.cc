#include <gtest/gtest.h>

#include "common/logging.hh"
#include "migration/migration_registry.hh"

namespace hipster
{
namespace
{

TEST(MigrationRegistry, NoneSpecYieldsNoModel)
{
    EXPECT_EQ(makeMigrationModel("none"), nullptr);
    EXPECT_EQ(makeMigrationModel(""), nullptr);
    EXPECT_EQ(makeMigrationModel("migrate:none"), nullptr);
    EXPECT_TRUE(isNoneMigration("none"));
    EXPECT_TRUE(isNoneMigration("migrate:none"));
    EXPECT_FALSE(isNoneMigration("migrate:hexo"));
    EXPECT_FALSE(isNoneMigration("hexo"));
}

TEST(MigrationRegistry, HexoDefaultsParse)
{
    const auto model = makeMigrationModel("migrate:hexo");
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->label(), "migrate:hexo");
    EXPECT_DOUBLE_EQ(model->checkpointMb(), 64.0);
    // base = 64/400 + 64/117 + 64/400 seconds.
    const double base = 64.0 / 400.0 + 64.0 / 117.0 + 64.0 / 400.0;
    EXPECT_NEAR(model->baseLatency(), base, 1e-12);
    EXPECT_NEAR(model->latency("arm64", "arm64"), 0.25 * base, 1e-12);
    EXPECT_NEAR(model->latency("arm64", "riscv64"), 2.0 * base, 1e-12);
    EXPECT_NEAR(model->moveEnergy(), 64.0 * 0.02, 1e-12);
    EXPECT_FALSE(model->freeBetween("arm64", "arm64"));
}

TEST(MigrationRegistry, PrefixIsOptionalAndAliasesResolve)
{
    EXPECT_NE(makeMigrationModel("hexo"), nullptr);
    EXPECT_NE(makeMigrationModel("checkpoint"), nullptr);
    EXPECT_NE(makeMigrationModel("migrate:instant"), nullptr);
    EXPECT_NE(makeMigrationModel("free"), nullptr);
}

TEST(MigrationRegistry, InstantIsFreeForEveryIsaPair)
{
    const auto model = makeMigrationModel("migrate:instant");
    ASSERT_NE(model, nullptr);
    EXPECT_DOUBLE_EQ(model->baseLatency(), 0.0);
    EXPECT_DOUBLE_EQ(model->moveEnergy(), 0.0);
    EXPECT_TRUE(model->freeBetween("arm64", "riscv64"));
    EXPECT_TRUE(model->freeBetween("x86_64", "x86_64"));
}

TEST(MigrationRegistry, ParamsOverrideDefaults)
{
    const auto model = makeMigrationModel(
        "migrate:hexo:ckpt=128,bw=234,warm=0,xisa=4,joules=0.5");
    ASSERT_NE(model, nullptr);
    const double base =
        128.0 / 400.0 + 128.0 / 234.0 + 128.0 / 400.0;
    EXPECT_NEAR(model->baseLatency(), base, 1e-12);
    EXPECT_DOUBLE_EQ(model->latency("arm64", "arm64"), 0.0);
    EXPECT_NEAR(model->latency("arm64", "riscv64"), 4.0 * base, 1e-12);
    EXPECT_NEAR(model->moveEnergy(), 64.0, 1e-12);
}

TEST(MigrationRegistry, UnknownFamilyFailsFastWithCatalog)
{
    try {
        makeMigrationModel("migrate:teleport");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("unknown migration family"),
                  std::string::npos);
        EXPECT_NE(what.find("hexo"), std::string::npos);
        EXPECT_NE(what.find("instant"), std::string::npos);
        EXPECT_NE(what.find("none"), std::string::npos);
    }
}

TEST(MigrationRegistry, BadParamsFailFast)
{
    EXPECT_THROW(makeMigrationModel("migrate:hexo:ckpt=-1"),
                 FatalError);
    EXPECT_THROW(makeMigrationModel("migrate:hexo:nonsense=3"),
                 FatalError);
    EXPECT_THROW(makeMigrationModel("migrate:hexo:ckpt=abc"),
                 FatalError);
    EXPECT_THROW(makeMigrationModel("migrate:instant:ckpt=1"),
                 FatalError);
    EXPECT_FALSE(isMigrationSpec("migrate:hexo:warm=-2"));
    EXPECT_TRUE(isMigrationSpec("migrate:hexo:warm=0"));
    EXPECT_TRUE(isMigrationSpec("none"));
}

TEST(MigrationRegistry, CanonicalLabels)
{
    EXPECT_EQ(canonicalMigrationLabel("none"), "none");
    EXPECT_EQ(canonicalMigrationLabel(""), "none");
    EXPECT_EQ(canonicalMigrationLabel("hexo"), "migrate:hexo");
    EXPECT_EQ(canonicalMigrationLabel("migrate:hexo:ckpt=8"),
              "migrate:hexo:ckpt=8");
}

TEST(MigrationRegistry, CatalogTextListsEveryFamily)
{
    const std::string catalog =
        MigrationRegistry::instance().catalogText();
    EXPECT_NE(catalog.find("none"), std::string::npos);
    EXPECT_NE(catalog.find("migrate:hexo"), std::string::npos);
    EXPECT_NE(catalog.find("migrate:instant"), std::string::npos);
    EXPECT_NE(catalog.find("ckpt"), std::string::npos);
}

TEST(MigrationRegistry, SplitMigrationList)
{
    const auto specs = splitMigrationList(
        "none;migrate:hexo:ckpt=64,warm=0.5;migrate:instant");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0], "none");
    EXPECT_EQ(specs[1], "migrate:hexo:ckpt=64,warm=0.5");
    EXPECT_EQ(specs[2], "migrate:instant");
}

} // namespace
} // namespace hipster
