#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "migration/migration.hh"
#include "migration/migration_registry.hh"

namespace hipster
{
namespace
{

constexpr double kTol = 1e-9;

double
residentSum(const MigrationEngine &engine)
{
    double sum = 0.0;
    for (const double r : engine.resident())
        sum += r;
    return sum;
}

/** Total routable share the engine is accountable for. */
double
accountedShare(const MigrationEngine &engine)
{
    return residentSum(engine) + engine.inFlightShare() +
           engine.pooledShare();
}

TEST(MigrationEngine, InitialPlacementAdoptsTarget)
{
    const auto model = makeMigrationModel("migrate:hexo");
    MigrationEngine engine(*model, {"arm64", "arm64"});
    std::vector<double> served;
    const std::vector<double> target = {0.75, 0.25};
    engine.step(0, 1.0, 0.5, 10.0, target, {0, 0}, nullptr, served);
    EXPECT_DOUBLE_EQ(engine.resident()[0], 0.75);
    EXPECT_DOUBLE_EQ(engine.resident()[1], 0.25);
    EXPECT_DOUBLE_EQ(served[0], 0.75 * 0.5 * 10.0);
    EXPECT_DOUBLE_EQ(served[1], 0.25 * 0.5 * 10.0);
}

TEST(MigrationEngine, PlannedMoveDefersTransitsAndSurges)
{
    // arm64 -> riscv64 is the cross-ISA path: 2.0 * base ~= 1.73 s,
    // so with dt=1 a move departs at k=0 and arrives at k=2.
    const auto model = makeMigrationModel("migrate:hexo");
    MigrationEngine engine(*model, {"arm64", "riscv64"});
    std::vector<double> served;
    const std::vector<double> target = {1.0, 0.0};
    const std::vector<char> up = {0, 0};
    const double load = 0.5, capacity = 10.0;

    std::vector<MigrationMove> moves = {{0, 1, 0.25}};
    const MigrationIntervalStats &s0 = engine.step(
        0, 1.0, load, capacity, target, up, &moves, served);
    EXPECT_EQ(s0.movesStarted, 1u);
    EXPECT_DOUBLE_EQ(s0.inFlightShare, 0.25);
    EXPECT_DOUBLE_EQ(s0.migrationEnergy, 64.0 * 0.02);
    // In-transit share is served nowhere and billed to nobody.
    EXPECT_DOUBLE_EQ(served[0], 0.75 * load * capacity);
    EXPECT_DOUBLE_EQ(served[1], 0.0);
    EXPECT_DOUBLE_EQ(s0.transitLoad, 0.25 * load * capacity);
    EXPECT_NEAR(accountedShare(engine), 1.0, kTol);

    moves.clear();
    const MigrationIntervalStats &s1 = engine.step(
        1, 1.0, load, capacity, target, up, &moves, served);
    EXPECT_DOUBLE_EQ(s1.inFlightShare, 0.25);
    EXPECT_DOUBLE_EQ(served[1], 0.0);
    EXPECT_NEAR(accountedShare(engine), 1.0, kTol);

    // Arrival: the resident share lands plus the deferred load of
    // two transit intervals is served as a surge.
    const MigrationIntervalStats &s2 = engine.step(
        2, 1.0, load, capacity, target, up, &moves, served);
    EXPECT_DOUBLE_EQ(s2.inFlightShare, 0.0);
    EXPECT_DOUBLE_EQ(engine.resident()[1], 0.25);
    EXPECT_DOUBLE_EQ(s2.surgeLoad, 2.0 * 0.25 * load * capacity);
    EXPECT_DOUBLE_EQ(served[1],
                     0.25 * load * capacity +
                         2.0 * 0.25 * load * capacity);
    EXPECT_NEAR(accountedShare(engine), 1.0, kTol);

    const MigrationTotals totals = engine.totals();
    EXPECT_EQ(totals.moves, 1u);
    EXPECT_DOUBLE_EQ(totals.surgeLoad, s2.surgeLoad);
    EXPECT_DOUBLE_EQ(totals.blankedLoad, 0.0);
}

TEST(MigrationEngine, DownDestinationBlanksDeferredLoad)
{
    const auto model = makeMigrationModel("migrate:hexo");
    MigrationEngine engine(*model, {"arm64", "riscv64"});
    std::vector<double> served;
    const std::vector<double> target = {1.0, 0.0};
    const double load = 0.5, capacity = 10.0;

    std::vector<MigrationMove> moves = {{0, 1, 0.25}};
    engine.step(0, 1.0, load, capacity, target, {0, 0}, &moves,
                served);
    moves.clear();
    engine.step(1, 1.0, load, capacity, target, {0, 0}, &moves,
                served);

    // Destination down on the arrival interval: the deferred load is
    // blanked and the share re-pools onto the up node.
    const std::vector<double> targetDown = {1.0, 0.0};
    const MigrationIntervalStats &s2 = engine.step(
        2, 1.0, load, capacity, targetDown, {0, 1}, &moves, served);
    EXPECT_DOUBLE_EQ(s2.blankedLoad, 2.0 * 0.25 * load * capacity);
    EXPECT_DOUBLE_EQ(s2.surgeLoad, 0.0);
    EXPECT_DOUBLE_EQ(engine.resident()[0], 1.0);
    EXPECT_DOUBLE_EQ(engine.resident()[1], 0.0);
    EXPECT_NEAR(accountedShare(engine), 1.0, kTol);
    EXPECT_DOUBLE_EQ(engine.totals().blankedLoad, s2.blankedLoad);
}

TEST(MigrationEngine, FreeModelUnderBlindDispatcherIsPassThrough)
{
    const auto model = makeMigrationModel("migrate:instant");
    MigrationEngine engine(*model, {"arm64", "riscv64", "x86_64"});
    std::vector<double> served;
    for (std::size_t k = 0; k < 10; ++k) {
        const double a = 0.2 + 0.05 * static_cast<double>(k % 4);
        const std::vector<double> target = {a, 0.7 - a, 0.3};
        const MigrationIntervalStats &stats = engine.step(
            k, 1.0, 0.4, 12.0, target, {0, 0, 0}, nullptr, served);
        // Bitwise pass-through: no moves, resident == target, served
        // is exactly the stateless routing expression.
        EXPECT_EQ(stats.movesStarted, 0u);
        EXPECT_DOUBLE_EQ(stats.migrationEnergy, 0.0);
        for (std::size_t i = 0; i < target.size(); ++i) {
            EXPECT_EQ(engine.resident()[i], target[i]);
            EXPECT_EQ(served[i], target[i] * 0.4 * 12.0);
        }
    }
    EXPECT_EQ(engine.totals().moves, 0u);
}

TEST(MigrationEngine, BlindChurnSticksBelowMoveFloor)
{
    // minmove=0.1: a 5% target wiggle must not trigger any move.
    const auto model =
        makeMigrationModel("migrate:hexo:minmove=0.1");
    MigrationEngine engine(*model, {"arm64", "arm64"});
    std::vector<double> served;
    engine.step(0, 1.0, 0.5, 10.0, {0.5, 0.5}, {0, 0}, nullptr,
                served);
    const MigrationIntervalStats &s1 = engine.step(
        1, 1.0, 0.5, 10.0, {0.55, 0.45}, {0, 0}, nullptr, served);
    EXPECT_EQ(s1.movesStarted, 0u);
    EXPECT_DOUBLE_EQ(engine.resident()[0], 0.5);

    // A 30% swing clears the floor and churns.
    const MigrationIntervalStats &s2 = engine.step(
        2, 1.0, 0.5, 10.0, {0.8, 0.2}, {0, 0}, nullptr, served);
    EXPECT_EQ(s2.movesStarted, 1u);
    EXPECT_NEAR(accountedShare(engine), 1.0, kTol);
}

TEST(MigrationEngine, DownSourceRepoolsResidentShare)
{
    const auto model = makeMigrationModel("migrate:hexo");
    MigrationEngine engine(*model, {"arm64", "arm64", "arm64"});
    std::vector<double> served;
    std::vector<MigrationMove> noMoves;
    engine.step(0, 1.0, 0.5, 10.0, {0.4, 0.4, 0.2}, {0, 0, 0},
                &noMoves, served);
    // Node 0 fails: its 0.4 resident share re-pools over the up
    // nodes proportional to the target.
    engine.step(1, 1.0, 0.5, 10.0, {0.0, 0.5, 0.5}, {1, 0, 0},
                &noMoves, served);
    EXPECT_DOUBLE_EQ(engine.resident()[0], 0.0);
    EXPECT_NEAR(engine.resident()[1], 0.4 + 0.2, kTol);
    EXPECT_NEAR(engine.resident()[2], 0.2 + 0.2, kTol);
    EXPECT_NEAR(accountedShare(engine), 1.0, kTol);
}

TEST(MigrationEngine, AllDownParksShareInThePool)
{
    const auto model = makeMigrationModel("migrate:hexo");
    MigrationEngine engine(*model, {"arm64", "riscv64"});
    std::vector<double> served;
    std::vector<MigrationMove> noMoves;
    engine.step(0, 1.0, 0.5, 10.0, {0.5, 0.5}, {0, 0}, &noMoves,
                served);
    engine.step(1, 1.0, 0.5, 10.0, {0.0, 0.0}, {1, 1}, &noMoves,
                served);
    EXPECT_DOUBLE_EQ(residentSum(engine), 0.0);
    EXPECT_DOUBLE_EQ(engine.pooledShare(), 1.0);
    EXPECT_DOUBLE_EQ(served[0], 0.0);
    EXPECT_DOUBLE_EQ(served[1], 0.0);
    // Restore: the pool redistributes and life goes on.
    engine.step(2, 1.0, 0.5, 10.0, {0.5, 0.5}, {0, 0}, &noMoves,
                served);
    EXPECT_DOUBLE_EQ(engine.pooledShare(), 0.0);
    EXPECT_NEAR(accountedShare(engine), 1.0, kTol);
}

/**
 * The conservation invariant of the tentpole: across a long run of
 * shifting targets, blind churn, planned moves and node failures, no
 * load share is ever lost or double-counted — resident + in-flight +
 * pooled stays exactly 1.
 */
TEST(MigrationEngine, ConservationInvariantHoldsEveryInterval)
{
    const auto model = makeMigrationModel("migrate:hexo:ckpt=256");
    MigrationEngine engine(
        *model, {"arm64", "arm64", "riscv64", "riscv64"});
    std::vector<double> served;
    std::vector<MigrationMove> planned;
    for (std::size_t k = 0; k < 200; ++k) {
        // Deterministic shifting target distribution.
        double weights[4];
        double sum = 0.0;
        for (std::size_t i = 0; i < 4; ++i) {
            weights[i] =
                1.0 + static_cast<double>((k + 3 * i) % 5);
            sum += weights[i];
        }
        std::vector<char> down(4, 0);
        if (k % 11 < 2)
            down[(k / 11) % 4] = 1;
        std::vector<double> target(4, 0.0);
        double upWeight = 0.0;
        for (std::size_t i = 0; i < 4; ++i)
            upWeight += down[i] ? 0.0 : weights[i];
        for (std::size_t i = 0; i < 4; ++i)
            target[i] = down[i] ? 0.0 : weights[i] / upWeight;

        if (k % 3 == 0) {
            // Alternate between blind churn and planned moves.
            engine.step(k, 1.0, 0.6, 20.0, target, down, nullptr,
                        served);
        } else {
            planned.clear();
            if (k % 3 == 1 && !down[0] && !down[2])
                planned.push_back({0, 2, 0.05});
            engine.step(k, 1.0, 0.6, 20.0, target, down, &planned,
                        served);
        }
        ASSERT_NEAR(accountedShare(engine), 1.0, kTol)
            << "interval " << k;
        for (const double s : served)
            ASSERT_GE(s, 0.0);
    }
    EXPECT_GT(engine.totals().moves, 0u);
}

TEST(MigrationEngine, MalformedMovesAreFatal)
{
    const auto model = makeMigrationModel("migrate:hexo");
    MigrationEngine engine(*model, {"arm64", "arm64"});
    std::vector<double> served;
    const std::vector<double> target = {0.5, 0.5};
    std::vector<MigrationMove> bad = {{0, 7, 0.1}};
    EXPECT_THROW(engine.step(0, 1.0, 0.5, 10.0, target, {0, 0},
                             &bad, served),
                 FatalError);
    std::vector<MigrationMove> self = {{1, 1, 0.1}};
    EXPECT_THROW(engine.step(0, 1.0, 0.5, 10.0, target, {0, 0},
                             &self, served),
                 FatalError);
    std::vector<MigrationMove> negative = {{0, 1, -0.1}};
    EXPECT_THROW(engine.step(0, 1.0, 0.5, 10.0, target, {0, 0},
                             &negative, served),
                 FatalError);
}

} // namespace
} // namespace hipster
