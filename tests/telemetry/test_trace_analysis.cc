/**
 * @file
 * Offline trace analysis: summarize tallies per-node decisions,
 * hazard windows and the phase breakdown; filter applies type/node/
 * interval predicates; diff ignores wall-clock payloads and reports
 * real divergence. The summary renderer is pinned byte-for-byte
 * against a committed fixture trace from a hazard:thermal+
 * interference fleet run (regenerate with hipster_fleet + mv, then
 * hipster_trace summarize > fixture_summary.txt).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/trace_analysis.hh"
#include "telemetry/trace_io.hh"

namespace hipster
{
namespace
{

constexpr std::uint32_t
bit(TelemetryEventType type)
{
    return 1u << static_cast<unsigned>(type);
}

std::string
fixturePath(const std::string &name)
{
    return std::string(HIPSTER_TELEMETRY_FIXTURE_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** A small synthetic trace with known tallies. */
std::vector<TelemetryEvent>
syntheticTrace()
{
    std::vector<TelemetryEvent> events;

    TelemetryEvent header(TelemetryEventType::Header, 0, 0.0);
    header.add("workload", "memcached").add("git_sha", "abc123");
    events.push_back(header);

    for (std::uint64_t k = 0; k < 4; ++k) {
        TelemetryEvent decision(TelemetryEventType::Decision, k,
                                static_cast<double>(k));
        decision.node = static_cast<int>(k % 2);
        decision.add("initial", k == 0 ? 1.0 : 0.0)
            .add("n_big", 4.0)
            .add("big_ghz", k < 2 ? 1.8 : 0.6)
            .add("n_small", 4.0)
            .add("small_ghz", 1.2)
            .add("run_batch", 0.0);
        events.push_back(decision);
    }

    // Hazard flags on node 0 at intervals 3,4,5 and 9 — two windows.
    for (std::uint64_t k : {3u, 4u, 5u, 9u}) {
        TelemetryEvent hazard(TelemetryEventType::Hazard, k,
                              static_cast<double>(k));
        hazard.node = 0;
        hazard.add("down", k == 9 ? 1.0 : 0.0)
            .add("pressure", k == 9 ? 0.0 : 0.5)
            .add("opp_cap_steps", 1.0)
            .add("dvfs_denied", 0.0)
            .add("reboot", 0.0);
        events.push_back(hazard);
    }

    TelemetryEvent dvfs(TelemetryEventType::Dvfs, 2, 2.0);
    dvfs.node = 1;
    dvfs.add("transitions", 3.0).add("denied", 1.0);
    events.push_back(dvfs);

    TelemetryEvent dispatch(TelemetryEventType::Dispatch, 1, 1.0);
    dispatch.node = 1;
    dispatch.add("share", 0.5);
    events.push_back(dispatch);

    TelemetryEvent migration(TelemetryEventType::Migration, 6, 6.0);
    migration.add("moves_started", 2.0);
    events.push_back(migration);

    TelemetryEvent profile(TelemetryEventType::PhaseProfile, 10, 10.0);
    profile.add("arrival_gen_s", 0.25)
        .add("event_loop_s", 0.5)
        .add("policy_s", 0.125)
        .add("metrics_s", 0.125)
        .add("sim_events", 2000.0)
        .add("perf_available", 0.0)
        .add("perf_status", "disabled");
    events.push_back(profile);

    return events;
}

TEST(TraceAnalysis, SummarizeTalliesTheSyntheticTrace)
{
    const TraceSummary summary = summarizeTrace(syntheticTrace());
    EXPECT_EQ(summary.totalEvents, 13u);
    EXPECT_TRUE(summary.hasHeader);
    EXPECT_EQ(summary.typeCounts[static_cast<std::size_t>(
                  TelemetryEventType::Decision)],
              4u);
    EXPECT_EQ(summary.typeCounts[static_cast<std::size_t>(
                  TelemetryEventType::Hazard)],
              4u);

    const TraceNodeStats &node0 = summary.nodes.at(0);
    EXPECT_EQ(node0.decisions, 2u);
    EXPECT_EQ(node0.initialDecisions, 1u);
    EXPECT_EQ(node0.hazardIntervals, 4u);
    EXPECT_EQ(node0.downIntervals, 1u);
    EXPECT_EQ(node0.pressuredIntervals, 3u);
    EXPECT_EQ(node0.oppCappedIntervals, 4u);
    // Intervals 3,4,5 merge; 9 opens its own window.
    ASSERT_EQ(node0.hazardWindows.size(), 2u);
    EXPECT_EQ(node0.hazardWindows[0].first, 3u);
    EXPECT_EQ(node0.hazardWindows[0].last, 5u);
    EXPECT_EQ(node0.hazardWindows[1].first, 9u);
    EXPECT_EQ(node0.hazardWindows[1].last, 9u);

    const TraceNodeStats &node1 = summary.nodes.at(1);
    EXPECT_EQ(node1.decisions, 2u);
    EXPECT_EQ(node1.dvfsTransitions, 3u);
    EXPECT_EQ(node1.dvfsDenied, 1u);
    EXPECT_EQ(node1.dispatchSamples, 1u);
    EXPECT_DOUBLE_EQ(node1.shareSum, 0.5);

    // The untagged migration event lands in the fleet (-1) scope.
    EXPECT_EQ(summary.nodes.at(-1).migrationMoves, 2u);

    EXPECT_EQ(summary.profiledRuns, 1u);
    EXPECT_DOUBLE_EQ(summary.arrivalGenSeconds, 0.25);
    EXPECT_EQ(summary.simEvents, 2000u);
    EXPECT_EQ(summary.perfStatus, "disabled");

    // Rendering mentions the load-bearing pieces.
    const std::string text = renderTraceSummary(summary);
    EXPECT_NE(text.find("workload=memcached"), std::string::npos);
    EXPECT_NE(text.find("built from abc123"), std::string::npos);
    EXPECT_NE(text.find("[3..5]"), std::string::npos);
    EXPECT_NE(text.find("[9..9]"), std::string::npos);
    EXPECT_NE(text.find("phase breakdown"), std::string::npos);
    EXPECT_NE(text.find("perf: unavailable (disabled)"),
              std::string::npos);
}

TEST(TraceAnalysis, FilterAppliesTypeNodeAndIntervalBounds)
{
    const auto events = syntheticTrace();

    TraceFilter byType;
    byType.typeMask = bit(TelemetryEventType::Hazard);
    EXPECT_EQ(filterTrace(events, byType).size(), 4u);

    TraceFilter byNode;
    byNode.node = 1;
    for (const TelemetryEvent &event : filterTrace(events, byNode))
        EXPECT_EQ(event.node, 1);
    EXPECT_EQ(filterTrace(events, byNode).size(), 4u);

    // -1 selects only untagged (fleet-level) events; -2 means any.
    TraceFilter untagged;
    untagged.node = -1;
    EXPECT_EQ(filterTrace(events, untagged).size(), 3u);

    TraceFilter byInterval;
    byInterval.minInterval = 3;
    byInterval.maxInterval = 5;
    EXPECT_EQ(filterTrace(events, byInterval).size(), 4u);

    TraceFilter combined;
    combined.typeMask = bit(TelemetryEventType::Hazard);
    combined.node = 0;
    combined.minInterval = 9;
    const auto kept = filterTrace(events, combined);
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].interval, 9u);
}

TEST(TraceAnalysis, DiffIgnoresWallClockButCatchesRealDivergence)
{
    const auto events = syntheticTrace();
    EXPECT_EQ(diffTraces(events, events), "");

    // Perturbing only the phase profile (wall-clock) stays silent.
    auto perturbedProfile = events;
    perturbedProfile.back().num[0].second = 99.0;
    EXPECT_EQ(diffTraces(events, perturbedProfile), "");

    // Perturbing a decision payload is real divergence.
    auto perturbedDecision = events;
    perturbedDecision[1].num[2].second = 0.6; // big_ghz
    const std::string report = diffTraces(events, perturbedDecision);
    EXPECT_NE(report.find("differs"), std::string::npos) << report;
    EXPECT_NE(report.find("big_ghz"), std::string::npos) << report;

    // A missing event shows up as a count mismatch.
    auto shorter = events;
    shorter.pop_back(); // drop profile: ignored
    shorter.pop_back(); // drop migration: reported
    const std::string counts = diffTraces(events, shorter);
    EXPECT_NE(counts.find("migration count"), std::string::npos)
        << counts;
    EXPECT_NE(counts.find("event counts differ"), std::string::npos)
        << counts;
}

TEST(TraceAnalysis, FixtureSummaryIsPinnedByteForByte)
{
    // The fixture is a real hazard:thermal+interference fleet trace;
    // its rendered summary (per-node decisions, hazard windows,
    // dispatch shares, phase breakdown) must never drift silently.
    const auto events =
        readTraceFile(fixturePath("fixture_trace.jsonl"));
    ASSERT_FALSE(events.empty());
    const std::string rendered =
        renderTraceSummary(summarizeTrace(events));
    EXPECT_EQ(rendered,
              readFile(fixturePath("fixture_summary.txt")));

    // Sanity on the fixture's content, independent of exact bytes.
    const TraceSummary summary = summarizeTrace(events);
    EXPECT_TRUE(summary.hasHeader);
    EXPECT_GE(summary.nodes.size(), 2u);
    EXPECT_GT(summary.profiledRuns, 0u);
    bool anyHazard = false;
    for (const auto &entry : summary.nodes)
        anyHazard |= !entry.second.hazardWindows.empty();
    EXPECT_TRUE(anyHazard);
}

} // namespace
} // namespace hipster
