/**
 * @file
 * The telemetry hard bar: emission is observation-only. A traced run
 * is bitwise-identical to an untraced one — across hazards, fleets
 * and sweep parallelism — because emission draws no RNG and perturbs
 * no event order, and `telemetry:none` is a null context.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "common/csv.hh"
#include "experiments/experiment_spec.hh"
#include "experiments/sweep.hh"
#include "fleet/fleet.hh"
#include "telemetry/sinks.hh"
#include "telemetry/telemetry_registry.hh"
#include "telemetry/trace_analysis.hh"
#include "telemetry/trace_io.hh"

namespace hipster
{
namespace
{

/** FNV-1a over raw bytes. */
std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t hash)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
hashDouble(double value, std::uint64_t hash)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(&bits, sizeof(bits), hash);
}

/** Bitwise fingerprint of one run: summary + every interval. */
std::uint64_t
runFingerprint(const ExperimentResult &result,
               std::uint64_t h = 0xcbf29ce484222325ULL)
{
    h = hashDouble(result.summary.qosGuarantee, h);
    h = hashDouble(result.summary.energy, h);
    h = hashDouble(result.summary.meanPower, h);
    h = hashDouble(result.summary.meanThroughput, h);
    h = fnv1a(&result.migrations, sizeof(result.migrations), h);
    h = fnv1a(&result.dvfsTransitions, sizeof(result.dvfsTransitions),
              h);
    for (std::size_t i = 0; i < result.series.size(); ++i) {
        const IntervalMetrics m = result.series[i];
        h = hashDouble(m.tailLatency, h);
        h = hashDouble(m.power, h);
        h = hashDouble(m.throughput, h);
        h = hashDouble(m.config.bigFreq, h);
        h = hashDouble(m.config.smallFreq, h);
        h = fnv1a(&m.config.nBig, sizeof(m.config.nBig), h);
        h = fnv1a(&m.config.nSmall, sizeof(m.config.nSmall), h);
    }
    return h;
}

/** Bitwise fingerprint of a fleet run: fleet series + every node. */
std::uint64_t
fleetFingerprint(const FleetResult &result)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const IntervalMetrics &m : result.fleetSeries) {
        h = hashDouble(m.tailLatency, h);
        h = hashDouble(m.power, h);
        h = hashDouble(m.throughput, h);
        h = hashDouble(m.offeredLoad, h);
    }
    h = hashDouble(result.summary.fleet.energy, h);
    h = hashDouble(result.summary.fleet.qosGuarantee, h);
    h = hashDouble(result.summary.strandedCapacity, h);
    for (const FleetNodeResult &node : result.nodes)
        h = runFingerprint(node.result, h);
    return h;
}

ExperimentSpec
singleNodeSpec(const std::string &telemetry)
{
    ExperimentSpec spec;
    spec.workload = "memcached";
    spec.platform = "juno";
    spec.trace = "diurnal";
    spec.policy = "hipster-in:learn=20";
    spec.hazard = "hazard:thermal:tdp_cap=0.6,tau=10s+interference:"
                  "burst=2,on=10s,off=20s";
    spec.telemetry = telemetry;
    spec.duration = 60.0;
    spec.seed = 11;
    return spec;
}

FleetSpec
fleetSpec(const std::string &telemetry)
{
    FleetSpec spec;
    spec.nodes = parseFleetNodes(
        "juno@hipster-in:learn=15;hetero:big=2,little=8@hipster-in:"
        "learn=15");
    spec.trace = "diurnal";
    spec.dispatcher = "dispatch:cp";
    spec.hazard = "hazard:thermal:tdp_cap=0.5,tau=5s+interference:"
                  "burst=2,on=10s,off=10s";
    spec.telemetry = telemetry;
    spec.duration = 40.0;
    spec.seed = 7;
    return spec;
}

SweepSpec
sweepSpec(const std::string &telemetry)
{
    SweepSpec spec;
    spec.workloads = {"memcached"};
    spec.platforms = {"juno"};
    spec.traces = {"diurnal"};
    spec.policies = {"hipster-in:learn=20", "static-big"};
    spec.hazards = {"none", "hazard:thermal:tdp_cap=0.6,tau=10s"};
    spec.seeds = 2;
    spec.masterSeed = 5;
    spec.duration = 40.0;
    spec.telemetry = telemetry;
    return spec;
}

std::string
aggregateCsv(const SweepResults &results)
{
    std::ostringstream out;
    CsvWriter csv(out);
    writeAggregateCsv(csv, results);
    return out.str();
}

TEST(TelemetryEquivalence, TracedRunIsBitwiseIdenticalToUntraced)
{
    const auto untraced = singleNodeSpec("none").run();
    const auto traced =
        singleNodeSpec("telemetry:ring:cap=1000000").run();
    EXPECT_EQ(runFingerprint(untraced), runFingerprint(traced));
    // The traced run actually emitted something.
    EXPECT_GT(traced.profile.intervals, 0u);
}

TEST(TelemetryEquivalence, SamplingAndFilteringNeverPerturb)
{
    const auto untraced = singleNodeSpec("none").run();
    for (const char *spec :
         {"telemetry:counters", "telemetry:counters:sample=3",
          "telemetry:ring:cap=4,only=decision",
          "telemetry:counters:perf=1"}) {
        const auto traced = singleNodeSpec(spec).run();
        EXPECT_EQ(runFingerprint(untraced), runFingerprint(traced))
            << spec;
    }
}

TEST(TelemetryEquivalence, NoneSpellingsMatchTheDefault)
{
    ExperimentSpec bare = singleNodeSpec("none");
    const auto reference = bare.run();
    for (const char *spec : {"", "telemetry:none"}) {
        bare.telemetry = spec;
        EXPECT_EQ(runFingerprint(reference), runFingerprint(bare.run()))
            << "'" << spec << "'";
    }
}

TEST(TelemetryEquivalence, TracedFleetRunIsBitwiseIdentical)
{
    const auto untraced = runFleet(fleetSpec("none"));
    const auto traced =
        runFleet(fleetSpec("telemetry:ring:cap=1000000"));
    EXPECT_EQ(fleetFingerprint(untraced), fleetFingerprint(traced));
}

TEST(TelemetryEquivalence, FleetTraceCarriesEveryNode)
{
    FleetSpec spec = fleetSpec("none");
    const auto sink = std::make_shared<RingBufferSink>(1000000);
    spec.telemetryContext = std::make_shared<TelemetryContext>(
        parseTelemetryConfig("telemetry:ring"), sink);
    runFleet(spec);

    const TraceSummary summary = summarizeTrace(sink->snapshot());
    EXPECT_TRUE(summary.hasHeader);
    // Both nodes show up, plus the fleet-level (-1) dispatch scope.
    EXPECT_TRUE(summary.nodes.count(0));
    EXPECT_TRUE(summary.nodes.count(1));
    EXPECT_GT(summary.nodes.at(0).decisions, 0u);
    EXPECT_GT(summary.nodes.at(1).decisions, 0u);
    EXPECT_GT(summary.nodes.at(0).dispatchSamples, 0u);
    // hazard:thermal+interference flags intervals on some node.
    std::uint64_t hazardIntervals = 0;
    for (const auto &entry : summary.nodes)
        hazardIntervals += entry.second.hazardIntervals;
    EXPECT_GT(hazardIntervals, 0u);
}

TEST(TelemetryEquivalence, TracedSweepAggregatesMatchUntracedAnyJobs)
{
    const std::string untraced =
        aggregateCsv(SweepEngine(sweepSpec("none")).run(1));
    // A shared counters sink sees every job's events; aggregates
    // stay byte-identical across jobs=1/jobs=4 and vs untraced.
    SweepEngine serial(sweepSpec("telemetry:counters"));
    const std::string tracedSerial = aggregateCsv(serial.run(1));
    SweepEngine parallel(sweepSpec("telemetry:counters"));
    const std::string tracedParallel = aggregateCsv(parallel.run(4));
    EXPECT_EQ(untraced, tracedSerial);
    EXPECT_EQ(untraced, tracedParallel);

    ASSERT_NE(parallel.sharedTelemetrySink(), nullptr);
    const auto *counters = dynamic_cast<CountersSink *>(
        parallel.sharedTelemetrySink().get());
    ASSERT_NE(counters, nullptr);
    // 1 workload x 1 platform x 1 trace x 2 policies x 2 hazards x
    // 2 seeds = 8 runs, each contributing a header and a profile.
    EXPECT_EQ(counters->count(TelemetryEventType::Header), 8u);
    EXPECT_EQ(counters->count(TelemetryEventType::PhaseProfile), 8u);
    EXPECT_GT(counters->count(TelemetryEventType::Decision), 0u);
}

TEST(TelemetryEquivalence, PerRunTraceFilesMatchAcrossJobCounts)
{
    // File sinks fan out one trace per run; modulo wall-clock
    // payloads (headers/phase profiles, skipped by diffTraces) the
    // same run's trace is identical no matter the job count.
    const std::string dir = testing::TempDir();
    SweepSpec serial = sweepSpec("telemetry:jsonl:path=" + dir +
                                 "equiv_serial.jsonl");
    SweepSpec parallel = sweepSpec("telemetry:jsonl:path=" + dir +
                                   "equiv_parallel.jsonl");
    SweepEngine(serial).run(1);
    SweepEngine(parallel).run(4);
    for (const char *run : {"run0000", "run0003", "run0007"}) {
        const auto a = readTraceFile(dir + "equiv_serial." + run +
                                     ".jsonl");
        const auto b = readTraceFile(dir + "equiv_parallel." + run +
                                     ".jsonl");
        EXPECT_EQ(diffTraces(a, b), "") << run;
    }
}

} // namespace
} // namespace hipster
