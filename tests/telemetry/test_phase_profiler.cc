/**
 * @file
 * Self-instrumentation: every run accounts its wall-clock into the
 * four phase buckets (arrival gen / event loop / policy / metrics)
 * and an events-per-second rate, the profile lands both in
 * ExperimentResult and in one phase_profile trace event, and none of
 * it ever feeds back into pinned outputs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "experiments/experiment_spec.hh"
#include "telemetry/phase_profiler.hh"
#include "telemetry/sinks.hh"
#include "telemetry/telemetry_registry.hh"

namespace hipster
{
namespace
{

ExperimentResult
shortRun(const std::shared_ptr<TelemetryContext> &telemetry = nullptr)
{
    ExperimentSpec spec;
    spec.workload = "memcached";
    spec.platform = "juno";
    spec.trace = "diurnal";
    spec.policy = "hipster-in:learn=15";
    spec.duration = 30.0;
    spec.seed = 3;
    spec.telemetryContext = telemetry;
    return spec.run();
}

TEST(PhaseProfiler, ProfileArithmetic)
{
    PhaseProfile profile;
    EXPECT_EQ(profile.totalSeconds(), 0.0);
    EXPECT_EQ(profile.eventsPerSecond(), 0.0);
    profile.arrivalGenSeconds = 1.0;
    profile.eventLoopSeconds = 2.0;
    profile.policySeconds = 0.5;
    profile.metricsSeconds = 0.5;
    profile.simEvents = 8000;
    EXPECT_DOUBLE_EQ(profile.totalSeconds(), 4.0);
    EXPECT_DOUBLE_EQ(profile.eventsPerSecond(), 2000.0);
    EXPECT_EQ(profile.perfStatus, "disabled");
}

TEST(PhaseProfiler, TimerMeasuresNonNegativeLaps)
{
    PhaseTimer timer;
    timer.start();
    double sink = 0.0;
    for (int i = 0; i < 1000; ++i)
        sink += static_cast<double>(i);
    EXPECT_GE(timer.lap(), 0.0);
    EXPECT_GT(sink, 0.0);
}

TEST(PhaseProfiler, EveryRunAccountsItsWallClock)
{
    const ExperimentResult result = shortRun();
    const PhaseProfile &profile = result.profile;
    // 30 s at 1 s intervals.
    EXPECT_EQ(profile.intervals, 30u);
    EXPECT_EQ(profile.intervals, result.series.size());
    EXPECT_GT(profile.simEvents, 0u);
    EXPECT_EQ(profile.simEvents, result.simEvents);
    EXPECT_GT(profile.totalSeconds(), 0.0);
    EXPECT_GT(profile.eventsPerSecond(), 0.0);
    // Each bucket is a wall-clock accumulation, never negative.
    EXPECT_GE(profile.arrivalGenSeconds, 0.0);
    EXPECT_GE(profile.eventLoopSeconds, 0.0);
    EXPECT_GE(profile.policySeconds, 0.0);
    EXPECT_GE(profile.metricsSeconds, 0.0);
    // The event loop actually runs, so its bucket moves.
    EXPECT_GT(profile.eventLoopSeconds, 0.0);
    // Hardware counters are off unless the spec arms perf=1.
    EXPECT_FALSE(profile.perfAvailable);
    EXPECT_EQ(profile.perfStatus, "disabled");
}

TEST(PhaseProfiler, TracedRunEmitsOnePhaseProfileEvent)
{
    const auto sink = std::make_shared<RingBufferSink>(1000000);
    const auto telemetry = std::make_shared<TelemetryContext>(
        parseTelemetryConfig("telemetry:ring"), sink);
    const ExperimentResult result = shortRun(telemetry);

    std::size_t profiles = 0;
    TelemetryEvent profileEvent;
    for (const TelemetryEvent &event : sink->snapshot()) {
        if (event.type != TelemetryEventType::PhaseProfile)
            continue;
        ++profiles;
        profileEvent = event;
    }
    ASSERT_EQ(profiles, 1u);
    EXPECT_EQ(profileEvent.numField("intervals"),
              static_cast<double>(result.profile.intervals));
    EXPECT_EQ(profileEvent.numField("sim_events"),
              static_cast<double>(result.profile.simEvents));
    EXPECT_EQ(profileEvent.numField("arrival_gen_s"),
              result.profile.arrivalGenSeconds);
    EXPECT_EQ(profileEvent.numField("event_loop_s"),
              result.profile.eventLoopSeconds);
    EXPECT_EQ(profileEvent.numField("policy_s"),
              result.profile.policySeconds);
    EXPECT_EQ(profileEvent.numField("metrics_s"),
              result.profile.metricsSeconds);
    EXPECT_EQ(profileEvent.numField("total_s"),
              result.profile.totalSeconds());
    EXPECT_EQ(profileEvent.strField("perf_status"),
              result.profile.perfStatus);
}

TEST(PhaseProfiler, OnlyFilterStillKeepsTheProfile)
{
    // only= force-includes phase_profile (and the header) so every
    // trace closes with its self-instrumentation.
    const auto sink = std::make_shared<RingBufferSink>(1000000);
    const auto telemetry = std::make_shared<TelemetryContext>(
        parseTelemetryConfig("telemetry:ring:only=dvfs"), sink);
    shortRun(telemetry);

    std::size_t profiles = 0, headers = 0, decisions = 0;
    for (const TelemetryEvent &event : sink->snapshot()) {
        profiles += event.type == TelemetryEventType::PhaseProfile;
        headers += event.type == TelemetryEventType::Header;
        decisions += event.type == TelemetryEventType::Decision;
    }
    EXPECT_EQ(profiles, 1u);
    EXPECT_EQ(headers, 1u);
    EXPECT_EQ(decisions, 0u);
}

} // namespace
} // namespace hipster
