/**
 * @file
 * perf_event_open probe: hardware counters are strictly optional.
 * The probe is cached, degrades to a clean named "unavailable"
 * reason off-Linux / in sandboxes / unprivileged, never throws, and
 * an armed-but-unavailable run still completes with its status
 * recorded — these tests pass identically on both outcomes.
 */

#include <gtest/gtest.h>

#include <string>

#include "experiments/experiment_spec.hh"
#include "telemetry/perf_probe.hh"

namespace hipster
{
namespace
{

TEST(PerfProbe, ProbeIsCachedAndConsistent)
{
    const PerfProbe &first = probePerfCounters();
    const PerfProbe &second = probePerfCounters();
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(first.available, second.available);
    EXPECT_EQ(first.reason, second.reason);
}

TEST(PerfProbe, ProbeAlwaysNamesItsOutcome)
{
    const PerfProbe &probe = probePerfCounters();
    if (probe.available)
        EXPECT_EQ(probe.reason, "ok");
    else
        // The degraded path must say why, never an empty string.
        EXPECT_FALSE(probe.reason.empty());
}

TEST(PerfProbe, SessionMatchesTheProbe)
{
    const PerfProbe &probe = probePerfCounters();
    PerfCounterSession session;
    EXPECT_EQ(session.ok(), probe.available);

    std::uint64_t cycles = 1, instructions = 1;
    session.stop(cycles, instructions);
    if (!probe.available) {
        EXPECT_FALSE(session.reason().empty());
        // Unavailable counters read as zero, never garbage.
        EXPECT_EQ(cycles, 0u);
        EXPECT_EQ(instructions, 0u);
    }
}

TEST(PerfProbe, StoppedSessionIsIdempotent)
{
    PerfCounterSession session;
    std::uint64_t cycles = 0, instructions = 0;
    session.stop(cycles, instructions);
    std::uint64_t again = 1, againInstructions = 1;
    session.stop(again, againInstructions);
    SUCCEED(); // no crash, no throw
}

TEST(PerfProbe, ArmedRunDegradesGracefully)
{
    ExperimentSpec spec;
    spec.workload = "memcached";
    spec.platform = "juno";
    spec.trace = "diurnal";
    spec.policy = "hipster-in:learn=15";
    spec.duration = 20.0;
    spec.seed = 3;
    spec.telemetry = "telemetry:counters:perf=1";
    const ExperimentResult result = spec.run();

    // Whatever the sandbox supports, the run finished and the status
    // is the probe's verdict — "ok" with live counters, or the clean
    // named reason with zeroed ones.
    EXPECT_EQ(result.profile.intervals, 20u);
    EXPECT_FALSE(result.profile.perfStatus.empty());
    EXPECT_NE(result.profile.perfStatus, "disabled");
    if (result.profile.perfAvailable) {
        EXPECT_EQ(result.profile.perfStatus, "ok");
        EXPECT_GT(result.profile.cycles, 0u);
        EXPECT_GT(result.profile.instructions, 0u);
    } else {
        EXPECT_EQ(result.profile.cycles, 0u);
        EXPECT_EQ(result.profile.instructions, 0u);
    }
}

TEST(PerfProbe, UnarmedRunReportsDisabled)
{
    ExperimentSpec spec;
    spec.workload = "memcached";
    spec.platform = "juno";
    spec.trace = "diurnal";
    spec.policy = "static-big";
    spec.duration = 10.0;
    spec.telemetry = "telemetry:counters";
    const ExperimentResult result = spec.run();
    EXPECT_EQ(result.profile.perfStatus, "disabled");
    EXPECT_FALSE(result.profile.perfAvailable);
}

} // namespace
} // namespace hipster
