/**
 * @file
 * Sink edge cases: JSONL and CSV round-trip every double at full
 * precision (numbers go through common/json_number), the ring buffer
 * drops oldest-first with a counted drop stat, counters tally per
 * type, and unwritable paths fail fast naming the telemetry stage.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_number.hh"
#include "common/logging.hh"
#include "telemetry/sinks.hh"
#include "telemetry/trace_io.hh"

namespace hipster
{
namespace
{

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/** Doubles that defeat naive %g-style formatting. */
std::vector<double>
trickyDoubles()
{
    return {0.1,
            1.0 / 3.0,
            2.0 / 3.0,
            1e300,
            1e-300,
            5e-324, // smallest denormal
            -0.0,
            123456789.987654321,
            3.141592653589793,
            0.30000000000000004};
}

TelemetryEvent
trickyEvent()
{
    TelemetryEvent event(TelemetryEventType::Decision, 42, 42.125);
    event.node = 3;
    const auto values = trickyDoubles();
    for (std::size_t i = 0; i < values.size(); ++i)
        event.add("v" + std::to_string(i), values[i]);
    event.add("label", "big@1.8, \"quoted\"\tand\nnewline");
    return event;
}

TEST(TelemetrySinks, JsonlRoundTripsEveryDoubleBitwise)
{
    const std::string path =
        testing::TempDir() + "sink_roundtrip.jsonl";
    const TelemetryEvent original = trickyEvent();
    {
        JsonlSink sink(path);
        sink.write(original);
        TelemetryEvent untagged(TelemetryEventType::Hazard, 7, 7.0);
        untagged.add("pressure", 0.75);
        sink.write(untagged);
        sink.flush();
        EXPECT_NE(sink.summaryText().find("2 events"),
                  std::string::npos);
    }

    const auto events = readTraceFile(path);
    ASSERT_EQ(events.size(), 2u);
    const TelemetryEvent &back = events[0];
    EXPECT_EQ(back.type, original.type);
    EXPECT_EQ(back.interval, original.interval);
    EXPECT_TRUE(sameBits(back.time, original.time));
    EXPECT_EQ(back.node, original.node);
    ASSERT_EQ(back.num.size(), original.num.size());
    for (std::size_t i = 0; i < original.num.size(); ++i) {
        EXPECT_EQ(back.num[i].first, original.num[i].first);
        EXPECT_TRUE(
            sameBits(back.num[i].second, original.num[i].second))
            << original.num[i].first << " = "
            << formatJsonNumber(original.num[i].second);
    }
    ASSERT_EQ(back.str.size(), original.str.size());
    EXPECT_EQ(back.str[0].second, original.str[0].second);
    // The untagged event keeps node = -1 (no "node" key emitted).
    EXPECT_EQ(events[1].node, -1);
}

TEST(TelemetrySinks, JsonRoundTripOfSingleEventString)
{
    const TelemetryEvent original = trickyEvent();
    TelemetryEvent back;
    ASSERT_TRUE(
        parseTelemetryEventJson(telemetryEventToJson(original), back));
    EXPECT_EQ(telemetryEventToJson(back),
              telemetryEventToJson(original));
}

TEST(TelemetrySinks, ParseRejectsMalformedLines)
{
    TelemetryEvent out;
    EXPECT_FALSE(parseTelemetryEventJson("", out));
    EXPECT_FALSE(parseTelemetryEventJson("not json", out));
    EXPECT_FALSE(parseTelemetryEventJson("{\"interval\":1}", out));
    EXPECT_FALSE(
        parseTelemetryEventJson("{\"type\":\"bogus\"}", out));
    EXPECT_FALSE(parseTelemetryEventJson(
        "{\"type\":\"decision\",\"x\":}", out));
    EXPECT_TRUE(
        parseTelemetryEventJson("{\"type\":\"decision\"}", out));
}

TEST(TelemetrySinks, CsvKeepsFullPrecisionInTheDataColumn)
{
    const std::string path = testing::TempDir() + "sink_precision.csv";
    const TelemetryEvent event = trickyEvent();
    {
        CsvSink sink(path);
        sink.write(event);
        sink.flush();
    }

    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    EXPECT_NE(content.find("type,interval,time_s,node,data"),
              std::string::npos);
    // Every payload number appears exactly as json_number formats
    // it, and that text parses back to the same bits.
    for (const auto &kv : event.num) {
        const std::string text = formatJsonNumber(kv.second);
        EXPECT_NE(content.find(kv.first + "=" + text),
                  std::string::npos)
            << kv.first;
        EXPECT_TRUE(
            sameBits(std::strtod(text.c_str(), nullptr), kv.second))
            << text;
    }
}

TEST(TelemetrySinks, RingOverflowDropsOldestFirstAndCountsIt)
{
    RingBufferSink sink(4);
    for (std::uint64_t k = 0; k < 10; ++k)
        sink.write(TelemetryEvent(TelemetryEventType::Decision, k,
                                  static_cast<double>(k)));

    EXPECT_EQ(sink.total(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);
    const auto kept = sink.snapshot();
    ASSERT_EQ(kept.size(), 4u);
    // The newest four survive, oldest first.
    for (std::size_t i = 0; i < kept.size(); ++i)
        EXPECT_EQ(kept[i].interval, 6u + i);
    const std::string summary = sink.summaryText();
    EXPECT_NE(summary.find("4 of 10"), std::string::npos) << summary;
    EXPECT_NE(summary.find("6 dropped oldest-first"),
              std::string::npos)
        << summary;
}

TEST(TelemetrySinks, RingBelowCapacityDropsNothing)
{
    RingBufferSink sink(8);
    for (std::uint64_t k = 0; k < 5; ++k)
        sink.write(TelemetryEvent(TelemetryEventType::Dvfs, k, 0.0));
    EXPECT_EQ(sink.dropped(), 0u);
    EXPECT_EQ(sink.total(), 5u);
    EXPECT_EQ(sink.snapshot().size(), 5u);
    EXPECT_EQ(sink.summaryText().find("dropped"), std::string::npos);
}

TEST(TelemetrySinks, CountersTallyPerType)
{
    CountersSink sink;
    EXPECT_EQ(sink.total(), 0u);
    EXPECT_NE(sink.summaryText().find("no events"),
              std::string::npos);
    for (int i = 0; i < 3; ++i)
        sink.write(
            TelemetryEvent(TelemetryEventType::Decision, 0, 0.0));
    sink.write(TelemetryEvent(TelemetryEventType::Hazard, 0, 0.0));
    EXPECT_EQ(sink.count(TelemetryEventType::Decision), 3u);
    EXPECT_EQ(sink.count(TelemetryEventType::Hazard), 1u);
    EXPECT_EQ(sink.count(TelemetryEventType::Migration), 0u);
    EXPECT_EQ(sink.total(), 4u);
    const std::string summary = sink.summaryText();
    EXPECT_NE(summary.find("decision=3"), std::string::npos);
    EXPECT_NE(summary.find("hazard=1"), std::string::npos);
}

TEST(TelemetrySinks, UnwritablePathFailsFastNamingTelemetry)
{
    for (const char *kind : {"jsonl", "csv"}) {
        try {
            if (std::string(kind) == "jsonl")
                JsonlSink sink("/nonexistent-dir/trace.jsonl");
            else
                CsvSink sink("/nonexistent-dir/trace.csv");
            FAIL() << kind << ": expected FatalError";
        } catch (const FatalError &error) {
            const std::string what = error.what();
            EXPECT_NE(what.find("telemetry"), std::string::npos)
                << what;
            EXPECT_NE(what.find("/nonexistent-dir/"),
                      std::string::npos)
                << what;
        }
    }
}

TEST(TelemetrySinks, TraceReaderFailsFastWithLineNumbers)
{
    EXPECT_THROW(readTraceFile("/nonexistent-dir/trace.jsonl"),
                 FatalError);

    const std::string path = testing::TempDir() + "sink_corrupt.jsonl";
    {
        std::ofstream out(path);
        out << telemetryEventToJson(
                   TelemetryEvent(TelemetryEventType::Header, 0, 0.0))
            << "\n\n"; // blank lines are fine
        out << "garbage\n";
    }
    try {
        readTraceFile(path);
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("line 3"),
                  std::string::npos)
            << error.what();
    }
}

} // namespace
} // namespace hipster
