/**
 * @file
 * Telemetry registry tests: the eighth spec grammar parses and
 * canonicalizes like the other seven, unknown sinks/keys fail fast
 * enumerating the catalog, per-run path suffixing keeps parallel
 * jobs off each other's files, and validation never touches disk.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "telemetry/sinks.hh"
#include "telemetry/telemetry_registry.hh"

namespace hipster
{
namespace
{

constexpr std::uint32_t
bit(TelemetryEventType type)
{
    return 1u << static_cast<unsigned>(type);
}

TEST(TelemetryRegistry, NoneSpellingsAllParseToTheNoOp)
{
    for (const char *spec : {"", "none", "telemetry:none"}) {
        EXPECT_TRUE(isNoneTelemetry(spec)) << spec;
        const TelemetryConfig config = parseTelemetryConfig(spec);
        EXPECT_TRUE(config.isNone()) << spec;
        EXPECT_EQ(canonicalTelemetryLabel(spec), "none") << spec;
        EXPECT_EQ(makeTelemetryContext(spec), nullptr) << spec;
    }
}

TEST(TelemetryRegistry, JsonlSpecParsesPathSampleAndOnly)
{
    const TelemetryConfig config = parseTelemetryConfig(
        "telemetry:jsonl:path=trace.jsonl,sample=10,"
        "only=decision+hazard");
    EXPECT_EQ(config.sink, "jsonl");
    EXPECT_EQ(config.path, "trace.jsonl");
    EXPECT_EQ(config.sample, 10u);
    // only= force-includes headers and phase profiles so a filtered
    // trace still names its build and closes with its profile.
    EXPECT_EQ(config.typeMask,
              bit(TelemetryEventType::Decision) |
                  bit(TelemetryEventType::Hazard) |
                  bit(TelemetryEventType::Header) |
                  bit(TelemetryEventType::PhaseProfile));
    EXPECT_FALSE(config.isNone());
}

TEST(TelemetryRegistry, PrefixIsOptionalAndCanonicalized)
{
    const TelemetryConfig bare =
        parseTelemetryConfig("jsonl:path=x.jsonl");
    const TelemetryConfig prefixed =
        parseTelemetryConfig("telemetry:jsonl:path=x.jsonl");
    EXPECT_EQ(bare.sink, prefixed.sink);
    EXPECT_EQ(bare.path, prefixed.path);
    EXPECT_EQ(canonicalTelemetryLabel("jsonl:path=x.jsonl"),
              "telemetry:jsonl:path=x.jsonl");
    EXPECT_EQ(canonicalTelemetryLabel("telemetry:ring"),
              "telemetry:ring");
}

TEST(TelemetryRegistry, AliasesResolveToTheirFamilies)
{
    EXPECT_EQ(parseTelemetryConfig("json:path=a.jsonl").sink, "jsonl");
    EXPECT_EQ(parseTelemetryConfig("telemetry:memory").sink, "ring");
    EXPECT_EQ(parseTelemetryConfig("count").sink, "counters");
}

TEST(TelemetryRegistry, RingAndCountersParseTheirKeys)
{
    const TelemetryConfig ring =
        parseTelemetryConfig("telemetry:ring:cap=16");
    EXPECT_EQ(ring.sink, "ring");
    EXPECT_EQ(ring.cap, 16u);

    const TelemetryConfig counters =
        parseTelemetryConfig("telemetry:counters:perf=1");
    EXPECT_EQ(counters.sink, "counters");
    EXPECT_TRUE(counters.perfCounters);
    EXPECT_FALSE(
        parseTelemetryConfig("telemetry:counters").perfCounters);
}

TEST(TelemetryRegistry, UnknownSinkFailsFastNamingTheCatalog)
{
    try {
        parseTelemetryConfig("telemetry:nosuch");
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("nosuch"), std::string::npos);
        EXPECT_NE(what.find("jsonl"), std::string::npos);
        EXPECT_NE(what.find("counters"), std::string::npos);
    }
}

TEST(TelemetryRegistry, BadParametersFailFastNamingTheSchema)
{
    // Unknown key, duplicate key, malformed pair, bad values and a
    // missing mandatory path all throw with the key schema attached.
    EXPECT_THROW(parseTelemetryConfig("telemetry:ring:nope=1"),
                 FatalError);
    EXPECT_THROW(
        parseTelemetryConfig("telemetry:ring:cap=4,cap=8"),
        FatalError);
    EXPECT_THROW(parseTelemetryConfig("telemetry:ring:cap"),
                 FatalError);
    EXPECT_THROW(parseTelemetryConfig("telemetry:ring:cap=0"),
                 FatalError);
    EXPECT_THROW(
        parseTelemetryConfig("telemetry:ring:sample=huge"),
        FatalError);
    EXPECT_THROW(
        parseTelemetryConfig("telemetry:ring:only=decision+bogus"),
        FatalError);
    EXPECT_THROW(parseTelemetryConfig("telemetry:jsonl"), FatalError);
    EXPECT_THROW(parseTelemetryConfig("telemetry:csv:sample=2"),
                 FatalError);
    try {
        parseTelemetryConfig("telemetry:jsonl:sample=2");
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("path="),
                  std::string::npos);
    }
}

TEST(TelemetryRegistry, ValidationNeverTouchesDisk)
{
    // The path does not exist and its directory is unwritable;
    // validation must still pass because it only parses.
    EXPECT_NO_THROW(validateTelemetrySpec(
        "telemetry:jsonl:path=/nonexistent-dir/trace.jsonl"));
    EXPECT_THROW(validateTelemetrySpec("telemetry:bogus"), FatalError);
}

TEST(TelemetryRegistry, CatalogListsEveryBuiltinSink)
{
    const std::string catalog =
        TelemetryRegistry::instance().catalogText();
    for (const char *name :
         {"none", "telemetry:jsonl", "telemetry:csv", "telemetry:ring",
          "telemetry:counters"})
        EXPECT_NE(catalog.find(name), std::string::npos) << name;
}

TEST(TelemetryRegistry, RunConfigSuffixesFilePathsBeforeExtension)
{
    TelemetryConfig config =
        parseTelemetryConfig("telemetry:jsonl:path=out/trace.jsonl");
    EXPECT_EQ(telemetryConfigForRun(config, 3).path,
              "out/trace.run0003.jsonl");
    EXPECT_EQ(telemetryConfigForRun(config, 0).path,
              "out/trace.run0000.jsonl");

    // No extension: the tag is appended.
    config.path = "trace";
    EXPECT_EQ(telemetryConfigForRun(config, 12).path, "trace.run0012");

    // A dot in a directory name is not an extension.
    config.path = "out.d/trace";
    EXPECT_EQ(telemetryConfigForRun(config, 1).path,
              "out.d/trace.run0001");

    // Pathless configs (ring/counters) come back unchanged: their
    // sinks are shared across the whole campaign.
    const TelemetryConfig ring =
        parseTelemetryConfig("telemetry:ring:cap=8");
    EXPECT_EQ(telemetryConfigForRun(ring, 7).path, "");
}

TEST(TelemetryRegistry, MakeRunContextHonorsSharingAndNone)
{
    const TelemetryConfig none = parseTelemetryConfig("none");
    EXPECT_EQ(makeRunTelemetryContext(none, nullptr, 0), nullptr);

    // A shared sink wins: every job emits into the same instance.
    const TelemetryConfig counters =
        parseTelemetryConfig("telemetry:counters");
    const auto shared = makeTelemetrySink(counters);
    const auto a = makeRunTelemetryContext(counters, shared, 0);
    const auto b = makeRunTelemetryContext(counters, shared, 5);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->sinkPtr(), shared);
    EXPECT_EQ(b->sinkPtr(), shared);

    // Without a shared sink a fresh one opens on the suffixed path.
    TelemetryConfig file = parseTelemetryConfig(
        "telemetry:jsonl:path=" + testing::TempDir() +
        "registry_run.jsonl");
    const auto c = makeRunTelemetryContext(file, nullptr, 2);
    ASSERT_NE(c, nullptr);
    EXPECT_NE(c->config().path.find(".run0002"), std::string::npos);
}

TEST(TelemetryRegistry, SplitListKeepsSpecCommasIntact)
{
    const auto specs = splitTelemetryList(
        "none;telemetry:jsonl:path=a.jsonl,sample=2,"
        "telemetry:counters");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0], "none");
    EXPECT_EQ(specs[1], "telemetry:jsonl:path=a.jsonl,sample=2");
    EXPECT_EQ(specs[2], "telemetry:counters");
}

TEST(TelemetryRegistry, EventTypeNamesRoundTrip)
{
    for (std::size_t i = 0; i < kTelemetryEventTypes; ++i) {
        const auto type = static_cast<TelemetryEventType>(i);
        TelemetryEventType back;
        ASSERT_TRUE(
            parseTelemetryEventType(telemetryEventTypeName(type), back))
            << i;
        EXPECT_EQ(back, type);
    }
    TelemetryEventType ignored;
    EXPECT_FALSE(parseTelemetryEventType("bogus", ignored));
    EXPECT_FALSE(parseTelemetryEventType("", ignored));
}

} // namespace
} // namespace hipster
