/**
 * @file
 * Dispatcher grammar + routing-policy tests: the registry's spec
 * grammar (catalog errors, parameter schemas, dispatch: prefix,
 * list splitting) and the behavioural contracts of each built-in
 * dispatcher (shares are a distribution; round-robin is uniform;
 * least-loaded follows free capacity; power-aware follows
 * efficiency; cp is deterministic, tie-breaks to the lowest index
 * and derates QoS-violating nodes).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/logging.hh"
#include "fleet/dispatcher.hh"
#include "fleet/dispatcher_registry.hh"

namespace hipster
{
namespace
{

std::vector<DispatchNodeView>
mixedFleet()
{
    // Four nodes: capacity (fleet load units) and TDP chosen so
    // efficiency (capacity/TDP) differs per node.
    std::vector<DispatchNodeView> nodes(4);
    nodes[0] = {1.0, 10.0, 0.0, 0.0, 10.0, 0.0};
    nodes[1] = {2.0, 12.0, 0.0, 0.0, 10.0, 0.0};
    nodes[2] = {1.5, 6.0, 0.0, 0.0, 10.0, 0.0};
    nodes[3] = {3.0, 20.0, 0.0, 0.0, 10.0, 0.0};
    return nodes;
}

std::vector<double>
routeWith(const std::string &spec,
          const std::vector<DispatchNodeView> &nodes, Fraction load)
{
    const auto dispatcher = makeDispatcher(spec);
    std::vector<double> shares;
    dispatcher->route(nodes, load, shares);
    return shares;
}

void
expectDistribution(const std::vector<double> &shares, std::size_t n)
{
    ASSERT_EQ(shares.size(), n);
    double sum = 0.0;
    for (const double s : shares) {
        EXPECT_GE(s, 0.0);
        EXPECT_TRUE(std::isfinite(s));
        sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DispatcherRegistry, CatalogHasTheFourBuiltins)
{
    const auto &registry = DispatcherRegistry::instance();
    for (const char *name :
         {"round-robin", "least-loaded", "power-aware", "cp"})
        EXPECT_TRUE(registry.has(name)) << name;
    const std::string catalog = registry.catalogText();
    EXPECT_NE(catalog.find("dispatch:cp"), std::string::npos);
    EXPECT_NE(catalog.find("quanta="), std::string::npos);
}

TEST(DispatcherRegistry, GrammarAcceptsPrefixedAndBareSpecs)
{
    EXPECT_EQ(makeDispatcher("dispatch:round-robin")->name(),
              "round-robin");
    EXPECT_EQ(makeDispatcher("round-robin")->name(), "round-robin");
    EXPECT_EQ(makeDispatcher("dispatch:cp:quanta=128,wpower=2")->name(),
              "cp");
    EXPECT_EQ(canonicalDispatcherLabel("cp"), "dispatch:cp");
    EXPECT_EQ(canonicalDispatcherLabel("dispatch:cp"), "dispatch:cp");
}

TEST(DispatcherRegistry, UnknownAndMalformedSpecsFailFast)
{
    EXPECT_THROW(makeDispatcher("dispatch:nope"), FatalError);
    EXPECT_THROW(makeDispatcher("cp:bogus=1"), FatalError);
    EXPECT_THROW(makeDispatcher("cp:quanta=0"), FatalError);
    EXPECT_THROW(makeDispatcher("cp:quanta=1.5"), FatalError);
    EXPECT_THROW(makeDispatcher("power-aware:gamma=-1"), FatalError);
    EXPECT_THROW(makeDispatcher("round-robin:k=1"), FatalError);
    EXPECT_FALSE(isDispatcherSpec("dispatch:nope"));
    EXPECT_TRUE(isDispatcherSpec("dispatch:least-loaded"));
    // The error names the catalog.
    try {
        makeDispatcher("dispatch:nope");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("round-robin"),
                  std::string::npos);
    }
}

TEST(DispatcherRegistry, ListSplittingKeepsInSpecCommas)
{
    const auto list = splitDispatcherList(
        "dispatch:cp:quanta=64,wpower=0.5;dispatch:round-robin,"
        "dispatch:least-loaded");
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0], "dispatch:cp:quanta=64,wpower=0.5");
    EXPECT_EQ(list[1], "dispatch:round-robin");
    EXPECT_EQ(list[2], "dispatch:least-loaded");
}

TEST(Dispatchers, AllBuiltinsYieldDistributions)
{
    const auto nodes = mixedFleet();
    for (const char *spec :
         {"round-robin", "least-loaded", "power-aware", "cp"}) {
        for (const double load : {0.0, 0.2, 0.7, 1.0})
            expectDistribution(routeWith(spec, nodes, load),
                               nodes.size());
    }
}

TEST(Dispatchers, RoundRobinIsUniform)
{
    const auto shares = routeWith("round-robin", mixedFleet(), 0.5);
    for (const double s : shares)
        EXPECT_DOUBLE_EQ(s, 0.25);
}

TEST(Dispatchers, LeastLoadedFollowsFreeCapacity)
{
    auto nodes = mixedFleet();
    // Node 1 fully utilized: it must receive (almost) nothing; the
    // rest split by capacity * free fraction.
    nodes[1].lastUtilization = 1.0;
    nodes[3].lastUtilization = 0.5;
    const auto shares = routeWith("least-loaded", nodes, 0.5);
    EXPECT_DOUBLE_EQ(shares[1], 0.0);
    // weights: 1.0, 0, 1.5, 1.5 -> shares 0.25, 0, 0.375, 0.375
    EXPECT_NEAR(shares[0], 0.25, 1e-12);
    EXPECT_NEAR(shares[2], 0.375, 1e-12);
    EXPECT_NEAR(shares[3], 0.375, 1e-12);
}

TEST(Dispatchers, PowerAwarePrefersEfficientNodes)
{
    const auto nodes = mixedFleet();
    // Efficiency capacity/TDP: 0.1, 0.1667, 0.25, 0.15 — node 2 is
    // the most efficient per watt.
    const auto flat = routeWith("power-aware:gamma=0", nodes, 0.5);
    const auto sharp = routeWith("power-aware:gamma=4", nodes, 0.5);
    // gamma=0 degrades to capacity-proportional routing.
    const double cap = 1.0 + 2.0 + 1.5 + 3.0;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        EXPECT_NEAR(flat[i], nodes[i].capacity / cap, 1e-12) << i;
    // Sharper gamma shifts share toward node 2 at the expense of the
    // least efficient node 0.
    EXPECT_GT(sharp[2], flat[2]);
    EXPECT_LT(sharp[0], flat[0]);
}

TEST(Dispatchers, CpIsDeterministicAndCoversTheLoad)
{
    const auto nodes = mixedFleet();
    const auto a = routeWith("cp", nodes, 0.6);
    const auto b = routeWith("cp", nodes, 0.6);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << i; // bitwise: pure greedy, no RNG
    expectDistribution(a, nodes.size());
}

TEST(Dispatchers, CpTieBreaksToTheLowestIndex)
{
    // Two identical nodes: the greedy quanta alternate, starting at
    // node 0, so an odd quanta count leaves node 0 one quantum ahead.
    std::vector<DispatchNodeView> nodes(2);
    nodes[0] = {1.0, 10.0, 0.0, 0.0, 10.0, 0.0};
    nodes[1] = {1.0, 10.0, 0.0, 0.0, 10.0, 0.0};
    const auto shares = routeWith("cp:quanta=3", nodes, 0.5);
    EXPECT_NEAR(shares[0], 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(shares[1], 1.0 / 3.0, 1e-12);
}

TEST(Dispatchers, CpShedsLoadFromQosViolatingNodes)
{
    auto nodes = mixedFleet();
    const auto healthy = routeWith("cp", nodes, 0.8);
    // Node 3 violating QoS by 4x: its effective capacity derates, so
    // its share must drop and the others pick up the difference.
    nodes[3].lastTailLatency = 40.0; // target 10
    const auto derated = routeWith("cp", nodes, 0.8);
    EXPECT_LT(derated[3], healthy[3]);
    expectDistribution(derated, nodes.size());
}

TEST(Dispatchers, EmptyAndDegenerateFleetsAreSafe)
{
    std::vector<DispatchNodeView> none;
    std::vector<double> shares;
    for (const char *spec :
         {"round-robin", "least-loaded", "power-aware", "cp"}) {
        makeDispatcher(spec)->route(none, 0.5, shares);
        EXPECT_TRUE(shares.empty()) << spec;
    }
    // All-saturated least-loaded falls back to a uniform split
    // rather than a 0/0 share vector.
    std::vector<DispatchNodeView> saturated(3);
    for (auto &node : saturated)
        node = {1.0, 10.0, 1.0, 0.0, 10.0, 0.0};
    makeDispatcher("least-loaded")->route(saturated, 0.9, shares);
    expectDistribution(shares, 3);
}

} // namespace
} // namespace hipster
