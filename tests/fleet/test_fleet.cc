/**
 * @file
 * Fleet core tests: node-binding parsing, capacity math, the
 * lockstep fleet loop's aggregation invariants (summed power/energy,
 * max tail latency, capacity-weighted utilization, shard
 * conservation), determinism of repeated runs, and the shard
 * LoadTrace views.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "fleet/fleet.hh"
#include "platform/platform_registry.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{
namespace
{

/** A small two-node fleet kept short so the suite stays fast. */
FleetSpec
smallFleet()
{
    FleetSpec spec;
    spec.nodes = parseFleetNodes(
        "juno@hipster-in;hetero:big=2,little=8@hipster-in");
    spec.workload = "memcached";
    spec.trace = "diurnal";
    spec.dispatcher = "dispatch:least-loaded";
    spec.duration = 60.0;
    spec.seed = 11;
    return spec;
}

TEST(FleetNodes, ParseBindings)
{
    const FleetNodeSpec plain = parseFleetNode("juno");
    EXPECT_EQ(plain.platform, "juno");
    EXPECT_EQ(plain.policy, "hipster-in");

    const FleetNodeSpec bound =
        parseFleetNode("hetero:big=2,little=8@static-big");
    EXPECT_EQ(bound.platform, "hetero:big=2,little=8");
    EXPECT_EQ(bound.policy, "static-big");
    EXPECT_EQ(bound.label(), "hetero:big=2,little=8@static-big");

    const auto nodes = parseFleetNodes("juno@hipster-in;juno;");
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[1].policy, "hipster-in");

    EXPECT_THROW(parseFleetNode("@hipster-in"), FatalError);
    EXPECT_THROW(parseFleetNode("juno@"), FatalError);
    EXPECT_THROW(parseFleetNodes(";;"), FatalError);
}

TEST(FleetSpecTest, ValidateFailsFastOnEveryAxis)
{
    FleetSpec spec = smallFleet();
    EXPECT_NO_THROW(spec.validate());

    FleetSpec bad = spec;
    bad.nodes.clear();
    EXPECT_THROW(bad.validate(), FatalError);

    bad = spec;
    bad.nodes[0].platform = "nope";
    EXPECT_THROW(bad.validate(), FatalError);

    bad = spec;
    bad.nodes[0].policy = "nope";
    EXPECT_THROW(bad.validate(), FatalError);

    bad = spec;
    bad.workload = "nope";
    EXPECT_THROW(bad.validate(), FatalError);

    bad = spec;
    bad.trace = "nope";
    EXPECT_THROW(bad.validate(), FatalError);

    bad = spec;
    bad.dispatcher = "dispatch:nope";
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(FleetCapacity, ScalesWithCoreCountAndWorkload)
{
    const LcWorkloadDef def = makeWorkloadFromSpec("memcached");
    const double juno = nodeCapacity(makePlatformFromSpec("juno"), def);
    EXPECT_GT(juno, 0.0);
    // Doubling every cluster roughly doubles capacity (exactly, for
    // a linear service model over core counts).
    const double doubled = nodeCapacity(
        makePlatformFromSpec("juno:big=4,little=8"), def);
    EXPECT_NEAR(doubled, 2.0 * juno, 1e-9);
    // A node at local load 1.0 receives `capacity` copies of the
    // app's full load, so capacity must exceed 1 on the reference
    // board (two big cores at max DVFS just meet the target at
    // offered load 1.0, and the board has more than those two).
    EXPECT_GT(juno, 1.0);
}

TEST(FleetRun, AggregationInvariantsHold)
{
    const FleetSpec spec = smallFleet();
    const FleetResult result = runFleet(spec);

    ASSERT_EQ(result.nodes.size(), 2u);
    ASSERT_EQ(result.fleetSeries.size(), 60u);
    EXPECT_EQ(result.dispatcher, "dispatch:least-loaded");

    double fleetCapacity = 0.0;
    for (const FleetNodeResult &node : result.nodes) {
        EXPECT_GT(node.capacity, 0.0);
        EXPECT_GT(node.tdp, 0.0);
        ASSERT_EQ(node.result.series.size(), 60u);
        ASSERT_EQ(node.shard.size(), 60u);
        fleetCapacity += node.capacity;
    }
    EXPECT_DOUBLE_EQ(result.summary.fleetCapacity, fleetCapacity);

    for (std::size_t k = 0; k < result.fleetSeries.size(); ++k) {
        const IntervalMetrics &agg = result.fleetSeries[k];
        double power = 0.0, energy = 0.0, throughput = 0.0;
        double tail = 0.0, weightedUtil = 0.0, routed = 0.0;
        for (const FleetNodeResult &node : result.nodes) {
            const IntervalMetrics m = node.result.series[k];
            power += m.power;
            energy += m.energy;
            throughput += m.throughput;
            tail = std::max(tail, m.tailLatency);
            weightedUtil += m.lcUtilization * node.capacity;
            routed += node.shard[k].second * node.capacity;
            // The routed local load is what the node actually saw.
            EXPECT_DOUBLE_EQ(m.offeredLoad, node.shard[k].second);
        }
        EXPECT_DOUBLE_EQ(agg.power, power);
        EXPECT_DOUBLE_EQ(agg.energy, energy);
        EXPECT_DOUBLE_EQ(agg.throughput, throughput);
        EXPECT_DOUBLE_EQ(agg.tailLatency, tail);
        EXPECT_NEAR(agg.lcUtilization, weightedUtil / fleetCapacity,
                    1e-12);
        // Shard conservation: with least-loaded shares (no clamping
        // at this fleet's loads) the routed load sums back to the
        // fleet-level offered load.
        EXPECT_NEAR(routed, agg.offeredLoad * fleetCapacity, 1e-9)
            << "interval " << k;
    }

    // Fleet QoS: an interval passes only when every node passed.
    std::size_t met = 0;
    for (const IntervalMetrics &agg : result.fleetSeries)
        met += agg.qosViolated() ? 0 : 1;
    EXPECT_NEAR(result.summary.fleet.qosGuarantee,
                static_cast<double>(met) / result.fleetSeries.size(),
                1e-12);
    EXPECT_GE(result.summary.strandedCapacity, 0.0);
    EXPECT_LT(result.summary.strandedCapacity, 1.0);
}

TEST(FleetRun, RepeatedRunsAreBitwiseIdentical)
{
    const FleetSpec spec = smallFleet();
    const FleetResult a = runFleet(spec);
    const FleetResult b = runFleet(spec);
    ASSERT_EQ(a.fleetSeries.size(), b.fleetSeries.size());
    for (std::size_t k = 0; k < a.fleetSeries.size(); ++k) {
        EXPECT_EQ(a.fleetSeries[k].power, b.fleetSeries[k].power);
        EXPECT_EQ(a.fleetSeries[k].tailLatency,
                  b.fleetSeries[k].tailLatency);
        EXPECT_EQ(a.fleetSeries[k].energy, b.fleetSeries[k].energy);
    }
    EXPECT_EQ(a.summary.fleet.energy, b.summary.fleet.energy);
    EXPECT_EQ(a.summary.strandedCapacity, b.summary.strandedCapacity);
}

TEST(FleetRun, SeedsDecorrelateNodes)
{
    // Node seeds derive independently from the fleet seed: two
    // identical platforms in one fleet must not produce identical
    // series (they see the same load but different service noise).
    FleetSpec spec = smallFleet();
    spec.nodes = parseFleetNodes("juno@hipster-in;juno@hipster-in");
    spec.dispatcher = "dispatch:round-robin";
    const FleetResult result = runFleet(spec);
    bool differs = false;
    for (std::size_t k = 0; k < result.fleetSeries.size() && !differs;
         ++k)
        differs = result.nodes[0].result.series[k].tailLatency !=
                  result.nodes[1].result.series[k].tailLatency;
    EXPECT_TRUE(differs);
}

TEST(FleetRun, ShardTraceReplaysTheRoutedLoad)
{
    const FleetSpec spec = smallFleet();
    const FleetResult result = runFleet(spec);
    const auto trace = result.nodes[0].shardTrace();
    for (const auto &[t, load] : result.nodes[0].shard)
        EXPECT_DOUBLE_EQ(trace->at(t), load);
}

TEST(FleetHazards, BlastDownsContiguousRacksTogether)
{
    // nodefail:blast=2 on a 4-node fleet forms two contiguous racks
    // (nodes 0+1 and 2+3). Any failure downs its victim's whole
    // rack: both members blank together, and the dispatcher serves
    // the fleet through the surviving rack.
    FleetSpec spec;
    spec.nodes = parseFleetNodes(
        "juno@hipster-in;juno@hipster-in;juno@hipster-in;"
        "juno@hipster-in");
    spec.workload = "memcached";
    spec.trace = "diurnal";
    spec.dispatcher = "dispatch:least-loaded";
    spec.hazard = "hazard:nodefail:mtbf=90s,mttr=30s,blast=2";
    spec.duration = 240.0;
    spec.seed = 11;
    const FleetResult result = runFleet(spec);

    const auto nodeDown = [&](std::size_t i, std::size_t k) {
        const IntervalMetrics &m = result.nodes[i].result.series[k];
        return m.power == 0.0 && m.throughput == 0.0;
    };
    std::size_t downIntervals = 0, reRouted = 0;
    for (std::size_t k = 0; k < result.fleetSeries.size(); ++k) {
        // Rack property: both members of each rack blank together.
        EXPECT_EQ(nodeDown(0, k), nodeDown(1, k)) << "interval " << k;
        EXPECT_EQ(nodeDown(2, k), nodeDown(3, k)) << "interval " << k;
        const bool rack0 = nodeDown(0, k), rack1 = nodeDown(2, k);
        if (rack0 || rack1)
            ++downIntervals;
        if (rack0 != rack1) {
            // Exactly one rack down: its nodes get no traffic and
            // the fleet keeps serving through the other rack.
            const std::size_t base = rack0 ? 0 : 2;
            EXPECT_EQ(result.nodes[base].shard[k].second, 0.0);
            EXPECT_EQ(result.nodes[base + 1].shard[k].second, 0.0);
            if (result.fleetSeries[k].throughput > 0.0)
                ++reRouted;
        }
    }
    // The property must not hold vacuously: this seed produces
    // failures, and the fleet rides them out on the other rack.
    EXPECT_GT(downIntervals, 0u);
    EXPECT_GT(reRouted, 0u);
}

TEST(FleetHazards, BlastOneIsBitwiseIdenticalToPlainNodefail)
{
    // blast=1 is the default: spelling it out must not change a
    // single bit of the run.
    FleetSpec plain = smallFleet();
    plain.hazard = "hazard:nodefail:mtbf=120s,mttr=30s";
    plain.duration = 120.0;
    FleetSpec blast = plain;
    blast.hazard = "hazard:nodefail:mtbf=120s,mttr=30s,blast=1";

    const FleetResult a = runFleet(plain);
    const FleetResult b = runFleet(blast);
    ASSERT_EQ(a.fleetSeries.size(), b.fleetSeries.size());
    for (std::size_t k = 0; k < a.fleetSeries.size(); ++k) {
        EXPECT_EQ(a.fleetSeries[k].power, b.fleetSeries[k].power);
        EXPECT_EQ(a.fleetSeries[k].energy, b.fleetSeries[k].energy);
        EXPECT_EQ(a.fleetSeries[k].tailLatency,
                  b.fleetSeries[k].tailLatency);
    }
    EXPECT_EQ(a.summary.fleet.energy, b.summary.fleet.energy);
}

} // namespace
} // namespace hipster
