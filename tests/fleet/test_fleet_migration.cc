/**
 * @file
 * Fleet-level migration tests: the conservation invariant (no load
 * quanta lost or double-served), the zero-cost equivalence (a free
 * same-ISA migration spec is bitwise-identical to plain re-routing),
 * blanking of in-flight arrivals under nodefail, cp-migrate's
 * cost-gated decline under huge checkpoints, and jobs=1 vs jobs=N
 * bitwise identity of mixed-ISA migration campaigns.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "fleet/fleet.hh"
#include "fleet/fleet_sweep.hh"

namespace hipster
{
namespace
{

/** Mixed-ISA fleet: one arm64 Juno plus two riscv64 Monte Cimone
 * boards, kept short so the suite stays fast. */
FleetSpec
mixedFleet()
{
    FleetSpec spec;
    spec.nodes = parseFleetNodes(
        "juno@hipster-in;montecimone@hipster-in;"
        "montecimone:u74=8@hipster-in");
    spec.workload = "memcached";
    spec.trace = "diurnal";
    spec.dispatcher = "dispatch:cp";
    spec.duration = 120.0;
    spec.seed = 7;
    return spec;
}

void
expectBitwiseEqualSeries(const FleetResult &a, const FleetResult &b)
{
    ASSERT_EQ(a.fleetSeries.size(), b.fleetSeries.size());
    for (std::size_t k = 0; k < a.fleetSeries.size(); ++k) {
        const IntervalMetrics &ma = a.fleetSeries[k];
        const IntervalMetrics &mb = b.fleetSeries[k];
        EXPECT_EQ(ma.power, mb.power) << "interval " << k;
        EXPECT_EQ(ma.energy, mb.energy) << "interval " << k;
        EXPECT_EQ(ma.tailLatency, mb.tailLatency) << "interval " << k;
        EXPECT_EQ(ma.throughput, mb.throughput) << "interval " << k;
        EXPECT_EQ(ma.lcUtilization, mb.lcUtilization)
            << "interval " << k;
    }
    EXPECT_EQ(a.summary.fleet.energy, b.summary.fleet.energy);
    EXPECT_EQ(a.summary.fleet.qosGuarantee,
              b.summary.fleet.qosGuarantee);
    EXPECT_EQ(a.summary.strandedCapacity, b.summary.strandedCapacity);
}

TEST(FleetMigration, ValidateFailsFastOnBadMigrationSpec)
{
    FleetSpec spec = mixedFleet();
    spec.migration = "migrate:hexo";
    EXPECT_NO_THROW(spec.validate());
    spec.migration = "migrate:teleport";
    EXPECT_THROW(spec.validate(), FatalError);
    spec.migration = "migrate:hexo:nonsense=1";
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(FleetMigration, ZeroCostSameIsaIsBitwiseIdenticalToNone)
{
    // All-juno fleet: every pair is same-ISA, so warm=0 plus
    // joules=0 makes every move free and a blind dispatcher must
    // reproduce the stateless re-routing path bit for bit.
    FleetSpec none = mixedFleet();
    none.nodes = parseFleetNodes(
        "juno@hipster-in;juno:big=4,little=8@hipster-in");
    FleetSpec free = none;
    free.migration = "migrate:hexo:warm=0,joules=0";

    const FleetResult a = runFleet(none);
    const FleetResult b = runFleet(free);
    EXPECT_EQ(a.migration, "none");
    EXPECT_EQ(b.migration, "migrate:hexo:warm=0,joules=0");
    expectBitwiseEqualSeries(a, b);
    EXPECT_EQ(b.summary.migration.moves, 0u);
    EXPECT_EQ(b.summary.migration.energy, 0.0);
    for (const MigrationIntervalStats &m : b.migrationSeries) {
        EXPECT_EQ(m.movesStarted, 0u);
        EXPECT_EQ(m.transitLoad, 0.0);
        EXPECT_EQ(m.surgeLoad, 0.0);
    }
}

TEST(FleetMigration, InstantIsBitwiseIdenticalToNoneOnMixedIsa)
{
    // migrate:instant is free for every ISA pair, so even a mixed
    // arm64 + riscv64 fleet under a blind dispatcher degrades to
    // plain re-routing.
    FleetSpec none = mixedFleet();
    FleetSpec instant = none;
    instant.migration = "migrate:instant";
    expectBitwiseEqualSeries(runFleet(none), runFleet(instant));
}

TEST(FleetMigration, PerIntervalConservationHolds)
{
    // No load quanta lost or double-served: every interval, the load
    // the nodes actually serve plus the quanta entering transit
    // minus the quanta surging back out must equal the offered load.
    FleetSpec spec = mixedFleet();
    spec.dispatcher = "dispatch:cp-migrate";
    spec.migration = "migrate:hexo";
    const FleetResult result = runFleet(spec);
    ASSERT_EQ(result.migrationSeries.size(),
              result.fleetSeries.size());
    const double dt = spec.runner.interval;

    double fleetCapacity = 0.0;
    for (const FleetNodeResult &node : result.nodes)
        fleetCapacity += node.capacity;

    for (std::size_t k = 0; k < result.fleetSeries.size(); ++k) {
        double servedSum = 0.0;
        for (const FleetNodeResult &node : result.nodes)
            servedSum += node.shard[k].second * node.capacity;
        const MigrationIntervalStats &m = result.migrationSeries[k];
        const double offered =
            result.fleetSeries[k].offeredLoad * fleetCapacity;
        EXPECT_NEAR(servedSum + m.transitLoad / dt - m.surgeLoad / dt,
                    offered, 1e-9)
            << "interval " << k;
        EXPECT_EQ(m.blankedLoad, 0.0) << "interval " << k;
    }

    // Cumulative bookkeeping: everything that entered transit either
    // surged back out, was blanked, or is still in flight at the end.
    const MigrationTotals totals = result.summary.migration;
    EXPECT_LE(totals.surgeLoad + totals.blankedLoad,
              totals.transitLoad + 1e-9);
    EXPECT_GT(totals.moves, 0u);
    EXPECT_GT(totals.energy, 0.0);
}

TEST(FleetMigration, AwarePlannerMovesLessThanBlindChurn)
{
    // A blind dispatcher churns toward its fresh share vector every
    // interval and pays for it; the cost-gated planner moves only
    // when the scoring gain beats the modeled cost.
    FleetSpec blind = mixedFleet();
    blind.migration = "migrate:hexo";
    FleetSpec aware = blind;
    aware.dispatcher = "dispatch:cp-migrate";

    const FleetResult b = runFleet(blind);
    const FleetResult a = runFleet(aware);
    EXPECT_GT(b.summary.migration.moves, 0u);
    EXPECT_LT(a.summary.migration.moves, b.summary.migration.moves);
    EXPECT_LT(a.summary.migration.energy, b.summary.migration.energy);
}

TEST(FleetMigration, CpMigrateDeclinesWhenCheckpointIsHuge)
{
    // A 2 GB checkpoint makes every move cost more than any scoring
    // gain, so the planner keeps the initial placement frozen.
    FleetSpec spec = mixedFleet();
    spec.dispatcher = "dispatch:cp-migrate";
    spec.migration = "migrate:hexo:ckpt=2048";
    const FleetResult result = runFleet(spec);
    EXPECT_EQ(result.summary.migration.moves, 0u);
    EXPECT_EQ(result.summary.migration.energy, 0.0);
    EXPECT_EQ(result.summary.migration.transitLoad, 0.0);
}

TEST(FleetMigration, NodefailBlanksInFlightArrivals)
{
    // A blind dispatcher under nodefail keeps transfers in flight;
    // some arrive at destinations that died mid-flight and their
    // deferred load is blanked, never served and never re-billed.
    FleetSpec spec = mixedFleet();
    spec.migration = "migrate:hexo";
    spec.hazard = "hazard:nodefail:mtbf=60s,mttr=30s";
    spec.duration = 180.0;
    const FleetResult result = runFleet(spec);
    const MigrationTotals totals = result.summary.migration;
    EXPECT_GT(totals.moves, 0u);
    EXPECT_GT(totals.blankedLoad, 0.0);
    EXPECT_LE(totals.surgeLoad + totals.blankedLoad,
              totals.transitLoad + 1e-9);
    for (const IntervalMetrics &m : result.fleetSeries) {
        EXPECT_TRUE(std::isfinite(m.power));
        EXPECT_TRUE(std::isfinite(m.tailLatency));
    }
}

TEST(FleetMigration, MixedIsaSweepIsBitwiseAcrossJobs)
{
    FleetSweepSpec sweep;
    sweep.base = mixedFleet();
    sweep.base.nodes = parseFleetNodes(
        "juno@hipster-in;montecimone@hipster-in");
    sweep.base.duration = 60.0;
    sweep.dispatchers = {"dispatch:cp", "dispatch:cp-migrate"};
    sweep.migrations = {"none", "migrate:hexo"};
    sweep.seeds = 1;
    sweep.keepSeries = false;

    const FleetSweepResults serial = runFleetSweep(sweep, 1);
    const FleetSweepResults parallel = runFleetSweep(sweep, 4);
    ASSERT_EQ(serial.fleet.size(), 4u);
    ASSERT_EQ(parallel.fleet.size(), serial.fleet.size());
    ASSERT_EQ(serial.sweep.runs.size(), parallel.sweep.runs.size());

    for (std::size_t i = 0; i < serial.sweep.runs.size(); ++i) {
        const RunSummary &a = serial.sweep.runs[i].result.summary;
        const RunSummary &b = parallel.sweep.runs[i].result.summary;
        EXPECT_EQ(a.energy, b.energy) << "run " << i;
        EXPECT_EQ(a.qosGuarantee, b.qosGuarantee) << "run " << i;
        EXPECT_EQ(a.meanPower, b.meanPower) << "run " << i;
    }
    for (std::size_t i = 0; i < serial.fleet.size(); ++i) {
        const FleetRunStats &a = serial.fleet[i];
        const FleetRunStats &b = parallel.fleet[i];
        EXPECT_EQ(a.dispatcher, b.dispatcher);
        EXPECT_EQ(a.migration, b.migration);
        EXPECT_EQ(a.strandedCapacity, b.strandedCapacity);
        EXPECT_EQ(a.migrationTotals.moves, b.migrationTotals.moves);
        EXPECT_EQ(a.migrationTotals.energy, b.migrationTotals.energy);
    }

    // The folded policy-axis labels keep dispatcher and migration
    // distinct; migrate:none keeps the historical bare label.
    EXPECT_EQ(serial.fleet[0].migration, "none");
    EXPECT_EQ(serial.fleet[1].migration, "migrate:hexo");
    EXPECT_EQ(serial.sweep.runs[1].job.policy,
              "dispatch:cp+migrate:hexo");
    EXPECT_EQ(serial.sweep.runs[0].job.policy, "dispatch:cp");
}

} // namespace
} // namespace hipster
