/**
 * @file
 * Fleet sweep determinism + A/B tests: jobs=1 and jobs=N campaigns
 * must be bitwise-identical, permuting the dispatcher axis must not
 * change any cell's numbers, and the CP dispatcher must beat
 * round-robin on fleet energy at equal-or-better fleet QoS guarantee
 * on the heterogeneous reference fleet (the headline claim of the
 * dispatcher layer; the committed bench output pins the same
 * comparison at full length).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"
#include "fleet/fleet_sweep.hh"

namespace hipster
{
namespace
{

FleetSweepSpec
referenceSweep()
{
    FleetSweepSpec spec;
    spec.base.nodes = parseFleetNodes(
        "juno@hipster-in;juno:big=4,little=8@hipster-in;"
        "hetero:big=2,little=8@hipster-in;"
        "hetero:big=6,little=6@hipster-in");
    spec.base.workload = "memcached";
    spec.base.duration = 60.0;
    spec.dispatchers = {"dispatch:round-robin", "dispatch:cp"};
    spec.traces = {"diurnal"};
    spec.seeds = 2;
    spec.masterSeed = 7;
    return spec;
}

/** The per-run CSV as a string: the full bitwise fingerprint of a
 * campaign (every summary metric of every run, in job order). */
std::string
runsCsvText(const FleetSweepResults &results)
{
    std::ostringstream out;
    CsvWriter csv(out);
    writeRunsCsv(csv, results.sweep);
    return out.str();
}

TEST(FleetSweep, SerialAndParallelAreBitwiseIdentical)
{
    const FleetSweepSpec spec = referenceSweep();
    const FleetSweepResults serial = runFleetSweep(spec, 1);
    const FleetSweepResults parallel = runFleetSweep(spec, 4);
    EXPECT_EQ(runsCsvText(serial), runsCsvText(parallel));
    ASSERT_EQ(serial.fleet.size(), parallel.fleet.size());
    for (std::size_t i = 0; i < serial.fleet.size(); ++i) {
        EXPECT_EQ(serial.fleet[i].strandedCapacity,
                  parallel.fleet[i].strandedCapacity)
            << i;
        EXPECT_EQ(serial.fleet[i].dispatcher,
                  parallel.fleet[i].dispatcher)
            << i;
    }
}

TEST(FleetSweep, DispatcherOrderPermutationsAgreeBitwise)
{
    FleetSweepSpec forward = referenceSweep();
    FleetSweepSpec reversed = referenceSweep();
    reversed.dispatchers = {"dispatch:cp", "dispatch:round-robin"};

    const FleetSweepResults a = runFleetSweep(forward, 2);
    const FleetSweepResults b = runFleetSweep(reversed, 2);

    for (const char *dispatcher :
         {"dispatch:round-robin", "dispatch:cp"}) {
        const AggregateSummary *cellA =
            a.sweep.find(dispatcher, "memcached");
        const AggregateSummary *cellB =
            b.sweep.find(dispatcher, "memcached");
        ASSERT_NE(cellA, nullptr) << dispatcher;
        ASSERT_NE(cellB, nullptr) << dispatcher;
        EXPECT_EQ(cellA->energy.mean, cellB->energy.mean)
            << dispatcher;
        EXPECT_EQ(cellA->qosGuarantee.mean, cellB->qosGuarantee.mean)
            << dispatcher;
        EXPECT_EQ(cellA->meanPower.mean, cellB->meanPower.mean)
            << dispatcher;
        EXPECT_EQ(a.meanStranded(dispatcher), b.meanStranded(dispatcher))
            << dispatcher;
    }
}

TEST(FleetSweep, CpBeatsRoundRobinOnEnergyAtEqualOrBetterQos)
{
    const FleetSweepResults results = runFleetSweep(referenceSweep(), 4);
    const AggregateSummary *rr =
        results.sweep.find("dispatch:round-robin", "memcached");
    const AggregateSummary *cp =
        results.sweep.find("dispatch:cp", "memcached");
    ASSERT_NE(rr, nullptr);
    ASSERT_NE(cp, nullptr);
    EXPECT_GE(cp->qosGuarantee.mean, rr->qosGuarantee.mean);
    EXPECT_LT(cp->energy.mean, rr->energy.mean);
}

TEST(FleetSweep, EmptyAxesFailFast)
{
    FleetSweepSpec spec = referenceSweep();
    spec.dispatchers.clear();
    EXPECT_THROW(runFleetSweep(spec), FatalError);

    spec = referenceSweep();
    spec.traces.clear();
    EXPECT_THROW(runFleetSweep(spec), FatalError);

    spec = referenceSweep();
    spec.dispatchers = {"dispatch:nope"};
    EXPECT_THROW(runFleetSweep(spec), FatalError);
}

} // namespace
} // namespace hipster
