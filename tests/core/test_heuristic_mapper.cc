/**
 * @file
 * Tests for the Section 3.3 heuristic state machine: climbing in the
 * danger zone, descending in the safe zone, holding between, clamps
 * and re-entry positioning.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/heuristic_mapper.hh"
#include "platform/config_space.hh"
#include "platform/platform.hh"

namespace hipster
{
namespace
{

class MapperTest : public ::testing::Test
{
  protected:
    MapperTest()
        : platform(Platform::junoR1()),
          ladder(ConfigSpace::orderForHeuristic(
              platform, ConfigSpace::paperStates(platform)))
    {}

    Platform platform;
    std::vector<CoreConfig> ladder;
    ZoneParams zones{0.80, 0.30};
};

TEST_F(MapperTest, StartsAtTopByDefault)
{
    HeuristicMapper mapper(ladder, zones);
    EXPECT_EQ(mapper.index(), ladder.size() - 1);
    HeuristicMapper bottom(ladder, zones, /*start_at_top=*/false);
    EXPECT_EQ(bottom.index(), 0u);
}

TEST_F(MapperTest, DangerZoneClimbs)
{
    HeuristicMapper mapper(ladder, zones, false);
    // tail at 90% of target: inside the danger zone.
    mapper.step(9.0, 10.0);
    EXPECT_EQ(mapper.index(), 1u);
    EXPECT_EQ(mapper.lastMove(), 1);
}

TEST_F(MapperTest, OutrightViolationClimbs)
{
    HeuristicMapper mapper(ladder, zones, false);
    mapper.step(25.0, 10.0);
    EXPECT_EQ(mapper.index(), 1u);
}

TEST_F(MapperTest, SafeZoneDescends)
{
    HeuristicMapper mapper(ladder, zones); // top
    mapper.step(1.0, 10.0);                // 10% of target
    EXPECT_EQ(mapper.index(), ladder.size() - 2);
    EXPECT_EQ(mapper.lastMove(), -1);
}

TEST_F(MapperTest, HoldZoneHolds)
{
    HeuristicMapper mapper(ladder, zones, false);
    mapper.moveTo(5);
    // 50% of target: between safe (30%) and danger (80%).
    mapper.step(5.0, 10.0);
    EXPECT_EQ(mapper.index(), 5u);
    EXPECT_EQ(mapper.lastMove(), 0);
}

TEST_F(MapperTest, ClampsAtLadderEnds)
{
    HeuristicMapper mapper(ladder, zones, false);
    mapper.step(0.1, 10.0); // safe at the bottom: stay
    EXPECT_EQ(mapper.index(), 0u);
    mapper.moveTo(ladder.size() - 1);
    mapper.step(99.0, 10.0); // danger at the top: stay
    EXPECT_EQ(mapper.index(), ladder.size() - 1);
}

TEST_F(MapperTest, ConsecutiveClimbsReachTop)
{
    HeuristicMapper mapper(ladder, zones, false);
    for (std::size_t i = 0; i < ladder.size() + 3; ++i)
        mapper.step(20.0, 10.0);
    EXPECT_EQ(mapper.index(), ladder.size() - 1);
}

TEST_F(MapperTest, OscillatesAcrossZoneBoundary)
{
    // The pathology the paper attributes to heuristic-only managers:
    // alternate safe/danger readings cause rung flapping.
    HeuristicMapper mapper(ladder, zones, false);
    mapper.moveTo(6);
    int moves = 0;
    for (int i = 0; i < 10; ++i) {
        mapper.step(i % 2 ? 1.0 : 9.5, 10.0);
        moves += mapper.lastMove() != 0 ? 1 : 0;
    }
    EXPECT_GE(moves, 8);
}

TEST_F(MapperTest, MoveToNearestExactMatch)
{
    HeuristicMapper mapper(ladder, zones);
    mapper.moveToNearest(ladder[4]);
    EXPECT_EQ(mapper.index(), 4u);
}

TEST_F(MapperTest, MoveToNearestApproximateMatch)
{
    HeuristicMapper mapper(ladder, zones);
    // A config outside the ladder: 1B0S at 0.9 — nearest by core
    // counts should have 1 big core or be close in shape.
    mapper.moveToNearest(CoreConfig{1, 0, 0.9, 0.65});
    const CoreConfig &chosen = ladder[mapper.index()];
    EXPECT_LE(chosen.nBig, 2u);
    // Not the far ends of the ladder.
    EXPECT_GT(mapper.index(), 0u);
}

TEST_F(MapperTest, ResetReturnsToStart)
{
    HeuristicMapper mapper(ladder, zones);
    mapper.step(1.0, 10.0);
    mapper.reset();
    EXPECT_EQ(mapper.index(), ladder.size() - 1);
}

TEST_F(MapperTest, RejectsBadZonesAndEmptyLadder)
{
    EXPECT_THROW(HeuristicMapper({}, zones), FatalError);
    EXPECT_THROW(HeuristicMapper(ladder, ZoneParams{1.2, 0.3}),
                 FatalError);
    EXPECT_THROW(HeuristicMapper(ladder, ZoneParams{0.5, 0.6}),
                 FatalError);
}

} // namespace
} // namespace hipster
