/**
 * @file
 * Parameterized property tests for the policy layer: every policy,
 * fed arbitrary (including adversarial) metric streams, must only
 * ever emit realizable decisions; Hipster's table must converge on
 * synthetic MDPs; zone sweeps must preserve the heuristic's safety
 * invariants.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "platform/config_space.hh"

namespace hipster
{
namespace
{

IntervalMetrics
metricsWith(Millis tail, Fraction load, Seconds end)
{
    IntervalMetrics m;
    m.begin = end - 1.0;
    m.end = end;
    m.offeredLoad = load;
    m.tailLatency = tail;
    m.qosTarget = 10.0;
    m.power = 2.0;
    m.energy = 2.0;
    return m;
}

/** Policy factories under test. */
using PolicyFactory =
    std::unique_ptr<TaskPolicy> (*)(const Platform &);

std::unique_ptr<TaskPolicy>
makeStaticBig(const Platform &platform)
{
    return std::make_unique<StaticPolicy>(StaticPolicy::allBig(platform));
}

std::unique_ptr<TaskPolicy>
makeOctopus(const Platform &platform)
{
    return std::make_unique<OctopusManPolicy>(platform,
                                              OctopusManParams{});
}

std::unique_ptr<TaskPolicy>
makeHeuristic(const Platform &platform)
{
    return std::make_unique<HeuristicOnlyPolicy>(platform,
                                                 ZoneParams{0.8, 0.3});
}

std::unique_ptr<TaskPolicy>
makeHipsterIn(const Platform &platform)
{
    HipsterParams params;
    params.learningPhase = 20.0;
    return std::make_unique<HipsterPolicy>(platform, params);
}

std::unique_ptr<TaskPolicy>
makeHipsterCo(const Platform &platform)
{
    HipsterParams params;
    params.variant = PolicyVariant::Collocated;
    params.learningPhase = 20.0;
    return std::make_unique<HipsterPolicy>(platform, params);
}

struct PolicyCase
{
    const char *name;
    PolicyFactory factory;

    friend std::ostream &
    operator<<(std::ostream &os, const PolicyCase &c)
    {
        return os << c.name;
    }
};

class PolicyProperties : public ::testing::TestWithParam<PolicyCase>
{
  protected:
    PolicyProperties() : platform(Platform::junoR1()) {}
    Platform platform;
};

TEST_P(PolicyProperties, DecisionsAlwaysRealizable)
{
    auto policy = GetParam().factory(platform);
    Decision d = policy->initialDecision();
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(platform.isValidConfig(d.config))
            << GetParam().name << " step " << i << ": "
            << d.config.label();
        // Adversarial stream: random loads and latencies including
        // extreme violations and zero-latency idle intervals.
        const Millis tail = rng.bernoulli(0.2)
                                ? 0.0
                                : rng.uniform(0.0, 40.0);
        const Fraction load = rng.uniform(0.0, 1.2);
        d = policy->decide(metricsWith(tail, load, i + 1.0));
    }
}

TEST_P(PolicyProperties, SpareFrequenciesOnlyForSpareClusters)
{
    auto policy = GetParam().factory(platform);
    Decision d = policy->initialDecision();
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        if (d.spareBigFreq) {
            EXPECT_EQ(d.config.nBig, 0u) << GetParam().name;
        }
        if (d.spareSmallFreq) {
            EXPECT_EQ(d.config.nSmall, 0u) << GetParam().name;
        }
        d = policy->decide(
            metricsWith(rng.uniform(0.0, 30.0), rng.uniform(), i + 1.0));
    }
}

TEST_P(PolicyProperties, ResetRestoresInitialBehaviour)
{
    auto policy = GetParam().factory(platform);
    const Decision first = policy->initialDecision();
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        policy->decide(
            metricsWith(rng.uniform(0.0, 30.0), rng.uniform(), i + 1.0));
    }
    policy->reset();
    const Decision after = policy->initialDecision();
    EXPECT_EQ(after.config, first.config) << GetParam().name;
}

TEST_P(PolicyProperties, SustainedViolationEndsAtMostCapableConfig)
{
    auto policy = GetParam().factory(platform);
    if (std::string(GetParam().name) == "static-big")
        GTEST_SKIP() << "static never moves";
    Decision d = policy->initialDecision();
    // Hammer with violations at max load for long enough for any
    // ladder to climb out.
    for (int i = 0; i < 100; ++i)
        d = policy->decide(metricsWith(50.0, 1.0, i + 1.0));
    // Must end at (or near) the top of its capability range: at
    // least the equivalent of the full big cluster.
    const Ips ips = ConfigSpace::peakIps(platform, d.config);
    const Ips two_big =
        ConfigSpace::peakIps(platform, {2, 0, 1.15, 0.65});
    EXPECT_GE(ips, two_big * 0.99) << GetParam().name << " ended at "
                                   << d.config.label();
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperties,
    ::testing::Values(PolicyCase{"static-big", &makeStaticBig},
                      PolicyCase{"octopus-man", &makeOctopus},
                      PolicyCase{"heuristic", &makeHeuristic},
                      PolicyCase{"hipster-in", &makeHipsterIn},
                      PolicyCase{"hipster-co", &makeHipsterCo}),
    [](const auto &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/**
 * Zone-parameter sweep for the heuristic mapper: for any valid
 * (danger, safe) pair, a monotone latency staircase must drive the
 * index monotonically.
 */
class ZoneSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(ZoneSweep, MonotoneLatencyMovesMonotonically)
{
    const auto [danger, safe] = GetParam();
    Platform platform(Platform::junoR1());
    HeuristicMapper mapper(
        ConfigSpace::orderForHeuristic(
            platform, ConfigSpace::paperStates(platform)),
        ZoneParams{danger, safe}, /*start_at_top=*/false);

    // Rising latencies: index must never decrease.
    std::size_t prev = mapper.index();
    for (double frac = 0.0; frac <= 2.0; frac += 0.1) {
        mapper.step(10.0 * frac, 10.0);
        ASSERT_GE(mapper.index(), prev);
        prev = mapper.index();
    }
    // Sustained violation: saturate at the top of the ladder.
    for (int i = 0; i < 20; ++i)
        mapper.step(20.0, 10.0);
    prev = mapper.index();
    EXPECT_EQ(prev, mapper.ladder().size() - 1);
    // Falling latencies (all at or below the danger boundary): index
    // must never increase, and deep-safe readings must drain it to
    // the bottom.
    for (double frac = danger; frac >= 0.0; frac -= 0.05) {
        mapper.step(10.0 * frac, 10.0);
        ASSERT_LE(mapper.index(), prev);
        prev = mapper.index();
    }
    for (int i = 0; i < 20; ++i)
        mapper.step(0.0, 10.0);
    EXPECT_EQ(mapper.index(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Zones, ZoneSweep,
    ::testing::Values(std::make_pair(0.9, 0.1), std::make_pair(0.8, 0.3),
                      std::make_pair(0.8, 0.5), std::make_pair(0.7, 0.2),
                      std::make_pair(0.95, 0.6),
                      std::make_pair(0.5, 0.1)));

/**
 * Q-table convergence on a synthetic two-state MDP, across an
 * alpha/gamma grid: with a deterministic reward structure the greedy
 * action must settle on the truly better arm in every state.
 */
class QConvergence
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(QConvergence, GreedySettlesOnBetterArm)
{
    const auto [alpha, gamma] = GetParam();
    QTable table(2, 2);
    // Arm 1 is better in state 0 (+2 vs +1); arm 0 is better in
    // state 1 (+3 vs 0). Transition: the state toggles each step.
    int w = 0;
    for (int step = 0; step < 2000; ++step) {
        for (std::size_t c = 0; c < 2; ++c) {
            const double reward =
                w == 0 ? (c == 1 ? 2.0 : 1.0) : (c == 0 ? 3.0 : 0.0);
            table.update(w, c, reward, 1 - w, alpha, gamma);
        }
        w = 1 - w;
    }
    EXPECT_EQ(table.bestAction(0), 1u)
        << "alpha=" << alpha << " gamma=" << gamma;
    EXPECT_EQ(table.bestAction(1), 0u)
        << "alpha=" << alpha << " gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaGammaGrid, QConvergence,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.6, 0.9),
                       ::testing::Values(0.0, 0.5, 0.9, 0.99)));

} // namespace
} // namespace hipster
