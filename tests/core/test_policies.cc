/**
 * @file
 * Tests for the baseline policies (Static, Octopus-Man, heuristic-
 * only) and the HipsterPolicy's phase machinery, table updates and
 * variant behaviours.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/baselines.hh"
#include "core/hipster_policy.hh"

namespace hipster
{
namespace
{

IntervalMetrics
metricsWith(Millis tail, Fraction load, Seconds end, Watts power = 2.0)
{
    IntervalMetrics m;
    m.begin = end - 1.0;
    m.end = end;
    m.offeredLoad = load;
    m.tailLatency = tail;
    m.qosTarget = 10.0;
    m.power = power;
    m.energy = power;
    return m;
}

class PolicyTest : public ::testing::Test
{
  protected:
    PolicyTest() : platform(Platform::junoR1()) {}
    Platform platform;
};

// --- StaticPolicy ---

TEST_F(PolicyTest, StaticAllBigPinsBothDecisions)
{
    auto policy = StaticPolicy::allBig(platform);
    const Decision first = policy.initialDecision();
    EXPECT_EQ(first.config.label(), "2B-1.15");
    const Decision later = policy.decide(metricsWith(50.0, 0.9, 1.0));
    EXPECT_EQ(later.config, first.config);
    EXPECT_FALSE(later.runBatch);
}

TEST_F(PolicyTest, StaticAllSmallUsesWholeSmallCluster)
{
    auto policy = StaticPolicy::allSmall(platform);
    EXPECT_EQ(policy.initialDecision().config.label(), "4S-0.65");
}

TEST_F(PolicyTest, StaticCollocatedRunsBatchAtMaxSpareDvfs)
{
    auto policy =
        StaticPolicy::allBig(platform, PolicyVariant::Collocated);
    const Decision d = policy.initialDecision();
    EXPECT_TRUE(d.runBatch);
    ASSERT_TRUE(d.spareSmallFreq.has_value());
    EXPECT_DOUBLE_EQ(*d.spareSmallFreq, 0.65);
}

TEST_F(PolicyTest, StaticRejectsUnrealizableConfig)
{
    EXPECT_THROW(StaticPolicy(platform, CoreConfig{3, 0, 1.15, 0.65}),
                 FatalError);
}

// --- Octopus-Man ---

TEST_F(PolicyTest, OctopusManNeverMixesAndNeverScalesDvfs)
{
    OctopusManPolicy policy(platform, {});
    Decision d = policy.initialDecision();
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(d.config.singleCoreType()) << d.config.label();
        if (d.config.nBig > 0) {
            EXPECT_DOUBLE_EQ(d.config.bigFreq, 1.15);
        }
        if (d.config.nSmall > 0) {
            EXPECT_DOUBLE_EQ(d.config.smallFreq, 0.65);
        }
        // Alternate safe/danger to force movement over the ladder.
        d = policy.decide(metricsWith(i % 2 ? 1.0 : 9.5, 0.5, i + 1.0));
    }
}

TEST_F(PolicyTest, OctopusManClimbsOnViolation)
{
    OctopusManPolicy policy(platform, {});
    // Start at the top; descend twice, then violate.
    Decision d = policy.initialDecision();
    d = policy.decide(metricsWith(1.0, 0.2, 1.0));
    d = policy.decide(metricsWith(1.0, 0.2, 2.0));
    const CoreConfig before = d.config;
    d = policy.decide(metricsWith(30.0, 0.8, 3.0));
    EXPECT_GT(ConfigSpace::peakIps(platform, d.config),
              ConfigSpace::peakIps(platform, before));
}

TEST_F(PolicyTest, OctopusManResetRestoresTop)
{
    OctopusManPolicy policy(platform, {});
    policy.initialDecision();
    policy.decide(metricsWith(1.0, 0.2, 1.0));
    policy.reset();
    EXPECT_EQ(policy.initialDecision().config.label(), "2B-1.15");
}

// --- Heuristic-only ---

TEST_F(PolicyTest, HeuristicOnlyExploresMixedConfigsAndDvfs)
{
    HeuristicOnlyPolicy policy(platform, ZoneParams{0.8, 0.3});
    Decision d = policy.initialDecision();
    bool saw_mixed = false, saw_low_dvfs = false;
    for (int i = 0; i < 12; ++i) {
        d = policy.decide(metricsWith(1.0, 0.2, i + 1.0)); // descend
        saw_mixed |= !d.config.singleCoreType();
        saw_low_dvfs |= d.config.nBig > 0 && d.config.bigFreq < 1.15;
    }
    EXPECT_TRUE(saw_mixed);
    EXPECT_TRUE(saw_low_dvfs);
}

TEST_F(PolicyTest, HeuristicOnlyInteractiveParksSpareClusterLow)
{
    HeuristicOnlyPolicy policy(platform, ZoneParams{0.8, 0.3});
    Decision d = policy.initialDecision();
    // Walk to the bottom of the ladder (small cores only).
    for (int i = 0; i < 20; ++i)
        d = policy.decide(metricsWith(0.5, 0.05, i + 1.0));
    EXPECT_EQ(d.config.nBig, 0u);
    ASSERT_TRUE(d.spareBigFreq.has_value());
    EXPECT_DOUBLE_EQ(*d.spareBigFreq, 0.60); // lowest big OPP
}

// --- HipsterPolicy ---

TEST_F(PolicyTest, HipsterStartsInLearningAtMostCapable)
{
    HipsterPolicy policy(platform, {});
    EXPECT_EQ(policy.phase(), HipsterPhase::Learning);
    const Decision d = policy.initialDecision();
    // Bootstrap at the heuristic's top rung (most capable state).
    EXPECT_EQ(d.config.label(), "2B2S-1.15");
}

TEST_F(PolicyTest, HipsterSwitchesToExploitationAfterLearningPhase)
{
    HipsterParams params;
    params.learningPhase = 10.0;
    HipsterPolicy policy(platform, params);
    policy.initialDecision();
    for (int i = 0; i < 9; ++i) {
        policy.decide(metricsWith(5.0, 0.5, i + 1.0));
        EXPECT_EQ(policy.phase(), HipsterPhase::Learning);
    }
    policy.decide(metricsWith(5.0, 0.5, 10.0));
    EXPECT_EQ(policy.phase(), HipsterPhase::Exploitation);
}

TEST_F(PolicyTest, HipsterUpdatesTableEveryInterval)
{
    HipsterPolicy policy(platform, {});
    policy.initialDecision();
    for (int i = 0; i < 5; ++i)
        policy.decide(metricsWith(5.0, 0.5, i + 1.0));
    EXPECT_EQ(policy.qtable().totalUpdates(), 5u);
}

TEST_F(PolicyTest, HipsterExploitsLearnedGoodAction)
{
    HipsterParams params;
    params.learningPhase = 40.0;
    params.bucketPercent = 10.0;
    params.stochasticReward = false;
    HipsterPolicy policy(platform, params);

    // During learning, feed a constant 35% load where the heuristic
    // descends to some frugal rung; tail always safely below target.
    Decision d = policy.initialDecision();
    for (int i = 0; i < 40; ++i)
        d = policy.decide(metricsWith(4.0, 0.35, i + 1.0));
    EXPECT_EQ(policy.phase(), HipsterPhase::Exploitation);
    // In exploitation at the same bucket, the action must be a
    // learned (visited) one, not the cold-table fallback.
    const int bucket = policy.quantizer().bucket(0.35);
    EXPECT_TRUE(policy.qtable().visited(bucket));
    const Decision expl = policy.decide(metricsWith(4.0, 0.35, 41.0));
    const std::size_t chosen = [&] {
        for (std::size_t i = 0; i < policy.actions().size(); ++i) {
            if (policy.actions()[i] == expl.config)
                return i;
        }
        return std::size_t(9999);
    }();
    EXPECT_EQ(chosen, policy.qtable().bestAction(bucket));
}

TEST_F(PolicyTest, HipsterFallsBackToHeuristicOnUnseenBucket)
{
    HipsterParams params;
    params.learningPhase = 5.0;
    params.bucketPercent = 10.0;
    HipsterPolicy policy(platform, params);
    Decision d = policy.initialDecision();
    for (int i = 0; i < 6; ++i)
        d = policy.decide(metricsWith(4.0, 0.35, i + 1.0));
    EXPECT_EQ(policy.phase(), HipsterPhase::Exploitation);
    // A never-seen load bucket (95%): the policy must not trust the
    // all-zero row; a violation there must climb, not jump randomly.
    const Decision fallback = policy.decide(metricsWith(20.0, 0.95, 7.0));
    EXPECT_FALSE(fallback.config.empty());
}

TEST_F(PolicyTest, HipsterRelearnsOnQosCollapse)
{
    HipsterParams params;
    params.learningPhase = 5.0;
    params.guaranteeWindow = 20;
    params.relearnThreshold = 0.8;
    HipsterPolicy policy(platform, params);
    policy.initialDecision();
    for (int i = 0; i < 6; ++i)
        policy.decide(metricsWith(4.0, 0.5, i + 1.0));
    EXPECT_EQ(policy.phase(), HipsterPhase::Exploitation);
    // Sustained violations: the watchdog must re-enter learning.
    for (int i = 6; i < 40; ++i)
        policy.decide(metricsWith(25.0, 0.5, i + 1.0));
    EXPECT_GE(policy.relearnCount(), 1u);
}

TEST_F(PolicyTest, HipsterInParksSpareClusterAtMinDvfs)
{
    HipsterParams params; // Interactive
    HipsterPolicy policy(platform, params);
    Decision d = policy.initialDecision();
    for (int i = 0; i < 20; ++i)
        d = policy.decide(metricsWith(0.5, 0.05, i + 1.0));
    ASSERT_EQ(d.config.nBig, 0u);
    ASSERT_TRUE(d.spareBigFreq.has_value());
    EXPECT_DOUBLE_EQ(*d.spareBigFreq, 0.60);
    EXPECT_FALSE(d.runBatch);
}

TEST_F(PolicyTest, HipsterCoBoostsSpareClusterAndRunsBatch)
{
    HipsterParams params;
    params.variant = PolicyVariant::Collocated;
    HipsterPolicy policy(platform, params);
    Decision d = policy.initialDecision();
    for (int i = 0; i < 20; ++i)
        d = policy.decide(metricsWith(0.5, 0.05, i + 1.0));
    ASSERT_EQ(d.config.nBig, 0u);
    ASSERT_TRUE(d.spareBigFreq.has_value());
    // Algorithm 2 lines 10-11: other core type at highest DVFS.
    EXPECT_DOUBLE_EQ(*d.spareBigFreq, 1.15);
    EXPECT_TRUE(d.runBatch);
    EXPECT_EQ(policy.name(), "HipsterCo");
}

TEST_F(PolicyTest, HipsterResetForgetsEverything)
{
    HipsterParams params;
    params.learningPhase = 2.0;
    HipsterPolicy policy(platform, params);
    policy.initialDecision();
    for (int i = 0; i < 5; ++i)
        policy.decide(metricsWith(5.0, 0.5, i + 1.0));
    policy.reset();
    EXPECT_EQ(policy.phase(), HipsterPhase::Learning);
    EXPECT_EQ(policy.qtable().totalUpdates(), 0u);
    EXPECT_EQ(policy.relearnCount(), 0u);
}

TEST_F(PolicyTest, HipsterNamesFollowVariant)
{
    HipsterPolicy in(platform, {});
    EXPECT_EQ(in.name(), "HipsterIn");
}

TEST_F(PolicyTest, HipsterRejectsBadParams)
{
    HipsterParams params;
    params.relearnThreshold = 1.5;
    EXPECT_THROW(HipsterPolicy(platform, params), FatalError);
    params = HipsterParams{};
    params.learningPhase = -1.0;
    EXPECT_THROW(HipsterPolicy(platform, params), FatalError);
}

TEST_F(PolicyTest, HipsterRejectsUnrealizableAction)
{
    EXPECT_THROW(
        HipsterPolicy(platform, {}, {CoreConfig{3, 0, 1.15, 0.65}}),
        FatalError);
}

} // namespace
} // namespace hipster
