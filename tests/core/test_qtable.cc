/**
 * @file
 * Tests for the R(w, c) lookup table and its Q-learning update.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/qtable.hh"

namespace hipster
{
namespace
{

TEST(QTable, StartsAtZero)
{
    QTable table(10, 5);
    for (int w = 0; w < 10; ++w) {
        for (std::size_t c = 0; c < 5; ++c) {
            EXPECT_DOUBLE_EQ(table.value(w, c), 0.0);
            EXPECT_EQ(table.visits(w, c), 0u);
        }
        EXPECT_FALSE(table.visited(w));
    }
}

TEST(QTable, UpdateMovesTowardTarget)
{
    QTable table(4, 3);
    // Terminal-ish update: next-state max is 0, so the target is the
    // reward itself; alpha=0.5 moves halfway.
    table.update(1, 2, 10.0, 0, 0.5, 0.9);
    EXPECT_DOUBLE_EQ(table.value(1, 2), 5.0);
    table.update(1, 2, 10.0, 0, 0.5, 0.9);
    EXPECT_DOUBLE_EQ(table.value(1, 2), 7.5);
    EXPECT_EQ(table.visits(1, 2), 2u);
    EXPECT_TRUE(table.visited(1));
}

TEST(QTable, UpdateBootstrapsFromNextState)
{
    QTable table(2, 2);
    // Seed the next state's value.
    table.update(1, 0, 10.0, 1, 1.0, 0.0); // R(1,0) = 10
    // Now an update from state 0 should include gamma*max_d R(1,d).
    table.update(0, 0, 1.0, 1, 1.0, 0.9);
    EXPECT_DOUBLE_EQ(table.value(0, 0), 1.0 + 0.9 * 10.0);
}

TEST(QTable, AlphaOneJumpsToTarget)
{
    QTable table(2, 2);
    table.update(0, 1, 3.0, 1, 1.0, 0.9);
    EXPECT_DOUBLE_EQ(table.value(0, 1), 3.0);
}

TEST(QTable, ConvergesToConstantReward)
{
    QTable table(1, 1);
    // Self-loop with constant reward r: fixed point is r/(1-gamma).
    const double r = 2.0, gamma = 0.9;
    for (int i = 0; i < 500; ++i)
        table.update(0, 0, r, 0, 0.6, gamma);
    EXPECT_NEAR(table.value(0, 0), r / (1.0 - gamma), 0.01);
}

TEST(QTable, BestActionIsArgmax)
{
    QTable table(3, 4);
    table.update(2, 1, 5.0, 0, 1.0, 0.0);
    table.update(2, 3, 9.0, 0, 1.0, 0.0);
    table.update(2, 0, -2.0, 0, 1.0, 0.0);
    EXPECT_EQ(table.bestAction(2), 3u);
    EXPECT_DOUBLE_EQ(table.maxValue(2), 9.0);
}

TEST(QTable, BestActionTiesPickFirst)
{
    QTable table(1, 3);
    EXPECT_EQ(table.bestAction(0), 0u);
    table.update(0, 1, 4.0, 0, 1.0, 0.0);
    table.update(0, 2, 4.0, 0, 1.0, 0.0);
    EXPECT_EQ(table.bestAction(0), 1u);
}

TEST(QTable, NegativeRewardsLowerValue)
{
    QTable table(1, 2);
    table.update(0, 0, -3.0, 0, 1.0, 0.0);
    EXPECT_LT(table.value(0, 0), 0.0);
    EXPECT_EQ(table.bestAction(0), 1u); // untouched action wins
}

TEST(QTable, ClearResetsEverything)
{
    QTable table(2, 2);
    table.update(0, 0, 5.0, 1, 1.0, 0.5);
    table.clear();
    EXPECT_DOUBLE_EQ(table.value(0, 0), 0.0);
    EXPECT_EQ(table.visits(0, 0), 0u);
    EXPECT_EQ(table.totalUpdates(), 0u);
    EXPECT_FALSE(table.visited(0));
}

TEST(QTable, RejectsDegenerateShapes)
{
    EXPECT_THROW(QTable(0, 3), FatalError);
    EXPECT_THROW(QTable(3, 0), FatalError);
}

TEST(QTableDeath, BoundsChecked)
{
    QTable table(2, 2);
    EXPECT_DEATH(table.value(2, 0), "bucket");
    EXPECT_DEATH(table.value(0, 5), "action");
    EXPECT_DEATH(table.update(0, 0, 1.0, 0, 1.5, 0.9), "alpha");
    EXPECT_DEATH(table.update(0, 0, 1.0, 0, 0.5, 1.0), "gamma");
}

} // namespace
} // namespace hipster
