/**
 * @file
 * Tests for the Algorithm 1 reward mechanism: QoS reward, stochastic
 * danger-zone penalty, power reward (HipsterIn) and throughput
 * reward (HipsterCo).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/reward.hh"

namespace hipster
{
namespace
{

RewardInputs
baseInputs()
{
    RewardInputs in;
    in.qosTarget = 10.0;
    in.power = 2.0;
    in.tdp = 3.0;
    in.batchPresent = false;
    in.maxIpsSum = 7.5e9;
    return in;
}

TEST(Reward, SafeZoneGivesPositiveQosComponent)
{
    RewardCalculator calc(0.8);
    RewardInputs in = baseInputs();
    in.qosCurr = 4.0; // 0.4 of target, below danger (0.8)
    const RewardBreakdown b = calc.evaluate(in);
    EXPECT_NEAR(b.qosComponent, 0.4 + 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(b.stochasticPenalty, 0.0);
}

TEST(Reward, CloserToTargetScoresHigherBelowDanger)
{
    // Line 7 prefers configurations that approach (without crossing)
    // the target — the frugality pressure.
    RewardCalculator calc(0.8);
    RewardInputs near = baseInputs(), far = baseInputs();
    near.qosCurr = 7.0;
    far.qosCurr = 2.0;
    EXPECT_GT(calc.evaluate(near).qosComponent,
              calc.evaluate(far).qosComponent);
}

TEST(Reward, DangerZoneAppliesStochasticPenalty)
{
    RewardCalculator calc(0.8, /*seed=*/1);
    RewardInputs in = baseInputs();
    in.qosCurr = 9.0; // between 0.8*target and target
    bool saw_nonzero = false;
    for (int i = 0; i < 50; ++i) {
        const RewardBreakdown b = calc.evaluate(in);
        EXPECT_NEAR(b.qosComponent, 0.9 + 1.0, 1e-9);
        EXPECT_GE(b.stochasticPenalty, 0.0);
        EXPECT_LT(b.stochasticPenalty, 1.0);
        saw_nonzero |= b.stochasticPenalty > 0.0;
    }
    EXPECT_TRUE(saw_nonzero);
}

TEST(Reward, ViolationGivesNegativeScaledByTardiness)
{
    RewardCalculator calc(0.8);
    RewardInputs mild = baseInputs(), severe = baseInputs();
    mild.qosCurr = 12.0;   // ratio 1.2
    severe.qosCurr = 30.0; // ratio 3.0
    const RewardBreakdown mb = calc.evaluate(mild);
    const RewardBreakdown sb = calc.evaluate(severe);
    EXPECT_NEAR(mb.qosComponent, -1.2 - 1.0, 1e-9);
    EXPECT_NEAR(sb.qosComponent, -3.0 - 1.0, 1e-9);
    EXPECT_LT(sb.total(), mb.total());
}

TEST(Reward, PowerRewardPrefersLowPower)
{
    RewardCalculator calc(0.8);
    RewardInputs frugal = baseInputs(), hungry = baseInputs();
    frugal.qosCurr = hungry.qosCurr = 4.0;
    frugal.power = 1.5;
    hungry.power = 3.0;
    EXPECT_GT(calc.evaluate(frugal).efficiencyComponent,
              calc.evaluate(hungry).efficiencyComponent);
    // TDP/Power exactly (Algorithm 1 line 5).
    EXPECT_NEAR(calc.evaluate(frugal).efficiencyComponent, 3.0 / 1.5,
                1e-9);
}

TEST(Reward, ThroughputRewardWhenBatchPresent)
{
    RewardCalculator calc(0.8);
    RewardInputs in = baseInputs();
    in.qosCurr = 4.0;
    in.batchPresent = true;
    in.batchBigIps = 3.0e9;
    in.batchSmallIps = 1.5e9;
    const RewardBreakdown b = calc.evaluate(in);
    // (BIPS + SIPS) / (maxIPS(B) + maxIPS(S)), Algorithm 1 line 13.
    EXPECT_NEAR(b.efficiencyComponent, 4.5e9 / 7.5e9, 1e-9);
}

TEST(Reward, ThroughputRewardBoundedByOne)
{
    RewardCalculator calc(0.8);
    RewardInputs in = baseInputs();
    in.qosCurr = 1.0;
    in.batchPresent = true;
    in.batchBigIps = 4.26e9;
    in.batchSmallIps = 3.24e9;
    EXPECT_LE(calc.evaluate(in).efficiencyComponent, 1.0 + 1e-9);
}

TEST(Reward, ViolationStillAddsEfficiencyTerm)
{
    // Algorithm 1 applies lines 12-15 regardless of the QoS branch.
    RewardCalculator calc(0.8);
    RewardInputs in = baseInputs();
    in.qosCurr = 20.0;
    const RewardBreakdown b = calc.evaluate(in);
    EXPECT_NEAR(b.total(), (-2.0 - 1.0) + (3.0 / 2.0), 1e-9);
}

TEST(Reward, ZeroLatencyIdleIntervalIsSafe)
{
    RewardCalculator calc(0.8);
    RewardInputs in = baseInputs();
    in.qosCurr = 0.0; // no completions
    const RewardBreakdown b = calc.evaluate(in);
    EXPECT_NEAR(b.qosComponent, 1.0, 1e-9);
}

TEST(Reward, TotalComposesComponents)
{
    RewardBreakdown b;
    b.qosComponent = 1.4;
    b.stochasticPenalty = 0.3;
    b.efficiencyComponent = 1.5;
    EXPECT_NEAR(b.total(), 2.6, 1e-9);
}

TEST(Reward, DeterministicForSeed)
{
    RewardCalculator a(0.8, 7), b(0.8, 7);
    RewardInputs in = baseInputs();
    in.qosCurr = 9.0; // stochastic zone
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(a(in), b(in));
}

TEST(Reward, RejectsBadDangerParameter)
{
    EXPECT_THROW(RewardCalculator(0.0), FatalError);
    EXPECT_THROW(RewardCalculator(1.0), FatalError);
}

TEST(RewardDeath, RequiresPositiveTargetAndPower)
{
    RewardCalculator calc(0.8);
    RewardInputs in = baseInputs();
    in.qosTarget = 0.0;
    EXPECT_DEATH(calc.evaluate(in), "target");
    in = baseInputs();
    in.power = 0.0;
    EXPECT_DEATH(calc.evaluate(in), "power");
}

} // namespace
} // namespace hipster
