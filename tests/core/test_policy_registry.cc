/**
 * @file
 * Tests for the policy registry and its key=value spec grammar:
 * catalog and alias lookup, default round-trips, per-key overrides
 * reaching the constructed policies, fail-fast validation (unknown
 * policy enumerates the catalog, unknown key / out-of-range value
 * enumerate the schema), cross-key zone checks, and the spec-aware
 * CLI list splitting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/logging.hh"
#include "core/policy_registry.hh"

namespace hipster
{
namespace
{

PolicyRegistry::BuildContext
defaultContext(const Platform &platform)
{
    return PolicyRegistry::BuildContext{platform, HipsterParams{},
                                        OctopusManParams{}};
}

const HipsterParams &
hipsterParamsOf(const TaskPolicy &policy)
{
    const auto *hipster = dynamic_cast<const HipsterPolicy *>(&policy);
    EXPECT_NE(hipster, nullptr);
    return hipster->params();
}

TEST(PolicyRegistryCatalog, BuiltinsAndAliasesAreRegistered)
{
    const PolicyRegistry &registry = PolicyRegistry::instance();
    for (const char *name :
         {"static-big", "static-small", "heuristic", "octopus-man",
          "hipster-in", "hipster-co"})
        EXPECT_TRUE(registry.hasPolicy(name)) << name;
    // Aliases resolve to their canonical entries.
    EXPECT_TRUE(registry.hasPolicy("hipster"));
    EXPECT_TRUE(registry.hasPolicy("octopus"));
    ASSERT_NE(registry.findPolicy("hipster"), nullptr);
    EXPECT_EQ(registry.findPolicy("hipster")->name, "hipster-in");
    ASSERT_NE(registry.findPolicy("octopus"), nullptr);
    EXPECT_EQ(registry.findPolicy("octopus")->name, "octopus-man");
    EXPECT_FALSE(registry.hasPolicy("nonexistent"));
    EXPECT_GE(registry.policies().size(), 6u);
}

TEST(PolicyRegistryCatalog, TableThreeNamesKeepRowOrder)
{
    EXPECT_EQ(PolicyRegistry::instance().table3Names(),
              (std::vector<std::string>{"static-big", "static-small",
                                        "heuristic", "octopus-man",
                                        "hipster-in"}));
}

TEST(PolicyRegistryCatalog, CatalogTextListsEverything)
{
    const PolicyRegistry &registry = PolicyRegistry::instance();
    const std::string catalog = registry.catalogText();
    for (const PolicyInfo &policy : registry.policies()) {
        EXPECT_NE(catalog.find(policy.name), std::string::npos)
            << policy.name;
        EXPECT_NE(catalog.find(policy.display), std::string::npos)
            << policy.display;
        // Aliases print as aliases.
        for (const std::string &alias : policy.aliases)
            EXPECT_NE(catalog.find("(alias: " + alias + ")"),
                      std::string::npos)
                << alias;
        for (const PolicyParamInfo &param : policy.params)
            EXPECT_NE(catalog.find(param.key + "="), std::string::npos)
                << policy.name << "." << param.key;
    }
    // Defaults and ranges are shown.
    EXPECT_NE(catalog.find("bucket=5 in [0.1, 50]"), std::string::npos);
    EXPECT_NE(catalog.find("up=0.8"), std::string::npos);
}

TEST(PolicyRegistryErrors, UnknownPolicyEnumeratesCatalog)
{
    Platform platform(Platform::junoR1());
    try {
        makePolicyFromSpec("nonexistent", defaultContext(platform));
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown policy 'nonexistent'"),
                  std::string::npos)
            << msg;
        for (const PolicyInfo &policy :
             PolicyRegistry::instance().policies())
            EXPECT_NE(msg.find(policy.name), std::string::npos)
                << policy.name << " missing from: " << msg;
        EXPECT_NE(msg.find("alias: octopus"), std::string::npos);
    }
}

TEST(PolicyRegistryErrors, UnknownKeyEnumeratesTheSchema)
{
    try {
        validatePolicySpec("hipster-in:bucket=5,nope=1");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown key 'nope'"), std::string::npos)
            << msg;
        // The whole schema of the named policy is enumerated.
        const PolicyInfo *info =
            PolicyRegistry::instance().findPolicy("hipster-in");
        ASSERT_NE(info, nullptr);
        for (const PolicyParamInfo &param : info->params)
            EXPECT_NE(msg.find(param.key + "="), std::string::npos)
                << param.key << " missing from: " << msg;
    }
}

TEST(PolicyRegistryErrors, OutOfRangeNamesKeyAndRange)
{
    try {
        validatePolicySpec("hipster-in:bucket=999");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("bucket=999 is out of range"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("[0.1, 50]"), std::string::npos) << msg;
    }
    EXPECT_THROW(validatePolicySpec("octopus-man:up=1.5"), FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:alpha=-0.1"),
                 FatalError);
}

TEST(PolicyRegistryErrors, MalformedSpecsAreRejected)
{
    EXPECT_THROW(validatePolicySpec(""), FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:"), FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:bucket"), FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:bucket="), FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:=5"), FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:bucket=abc"),
                 FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:bucket=nan"),
                 FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:bucket=5,bucket=6"),
                 FatalError);
    // A flag takes 0 or 1, a window an integer.
    EXPECT_THROW(validatePolicySpec("hipster-in:stochastic=2"),
                 FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:window=10.5"),
                 FatalError);
    // Parameters on a parameterless policy.
    EXPECT_THROW(validatePolicySpec("static-big:bucket=5"),
                 FatalError);
}

TEST(PolicyRegistryErrors, ZoneCrossChecksFailFast)
{
    // The safe-zone end must sit below the danger-zone start,
    // resolving unset keys to their schema defaults.
    EXPECT_THROW(validatePolicySpec("octopus-man:up=0.2"), FatalError);
    EXPECT_THROW(validatePolicySpec("heuristic:safe=0.9"), FatalError);
    EXPECT_THROW(validatePolicySpec("hipster-in:danger=0.2,safe=0.5"),
                 FatalError);
    EXPECT_NO_THROW(validatePolicySpec("octopus-man:up=0.85,down=0.6"));
    EXPECT_NO_THROW(validatePolicySpec("heuristic:danger=0.9,safe=0.2"));
}

TEST(PolicyRegistrySpecs, BareNamesRoundTripTheDefaults)
{
    Platform platform(Platform::junoR1());
    const auto ctx = defaultContext(platform);
    const auto bare = PolicyRegistry::instance().make("hipster-in", ctx);
    const auto explicit_spec = PolicyRegistry::instance().make(
        "hipster-in:bucket=5,learn=500,danger=0.8,safe=0.3,alpha=0.6,"
        "gamma=0.9,relearn=0.8,window=100,migpen=0.5,bootstrap=1,"
        "stochastic=1",
        ctx);
    const HipsterParams &a = hipsterParamsOf(*bare);
    const HipsterParams &b = hipsterParamsOf(*explicit_spec);
    EXPECT_EQ(a.bucketPercent, b.bucketPercent);
    EXPECT_EQ(a.learningPhase, b.learningPhase);
    EXPECT_EQ(a.zones.danger, b.zones.danger);
    EXPECT_EQ(a.zones.safe, b.zones.safe);
    EXPECT_EQ(a.alpha, b.alpha);
    EXPECT_EQ(a.gamma, b.gamma);
    EXPECT_EQ(a.relearnThreshold, b.relearnThreshold);
    EXPECT_EQ(a.guaranteeWindow, b.guaranteeWindow);
    EXPECT_EQ(a.migrationPenalty, b.migrationPenalty);
    EXPECT_EQ(a.useHeuristicBootstrap, b.useHeuristicBootstrap);
    EXPECT_EQ(a.stochasticReward, b.stochasticReward);
}

TEST(PolicyRegistrySpecs, OverridesReachTheConstructedPolicy)
{
    Platform platform(Platform::junoR1());
    const auto ctx = defaultContext(platform);
    const auto policy = PolicyRegistry::instance().make(
        "hipster-in:bucket=8,learn=600,alpha=0.2,gamma=0.5,"
        "relearn=0.7,window=50,migpen=2,bootstrap=0,stochastic=0",
        ctx);
    const HipsterParams &params = hipsterParamsOf(*policy);
    EXPECT_DOUBLE_EQ(params.bucketPercent, 8.0);
    EXPECT_DOUBLE_EQ(params.learningPhase, 600.0);
    EXPECT_DOUBLE_EQ(params.alpha, 0.2);
    EXPECT_DOUBLE_EQ(params.gamma, 0.5);
    EXPECT_DOUBLE_EQ(params.relearnThreshold, 0.7);
    EXPECT_EQ(params.guaranteeWindow, 50u);
    EXPECT_DOUBLE_EQ(params.migrationPenalty, 2.0);
    EXPECT_FALSE(params.useHeuristicBootstrap);
    EXPECT_FALSE(params.stochasticReward);
    // The quantizer is actually built with the override.
    const auto *hipster =
        dynamic_cast<const HipsterPolicy *>(policy.get());
    ASSERT_NE(hipster, nullptr);
    EXPECT_DOUBLE_EQ(hipster->quantizer().bucketPercent(), 8.0);

    const auto octopus = PolicyRegistry::instance().make(
        "octopus-man:up=0.85,down=0.6", ctx);
    const auto *om =
        dynamic_cast<const OctopusManPolicy *>(octopus.get());
    ASSERT_NE(om, nullptr);
    EXPECT_DOUBLE_EQ(om->params().zones.danger, 0.85);
    EXPECT_DOUBLE_EQ(om->params().zones.safe, 0.6);

    const auto heuristic = PolicyRegistry::instance().make(
        "heuristic:danger=0.9,safe=0.2", ctx);
    const auto *ho =
        dynamic_cast<const HeuristicOnlyPolicy *>(heuristic.get());
    ASSERT_NE(ho, nullptr);
    EXPECT_DOUBLE_EQ(ho->mapper().zones().danger, 0.9);
    EXPECT_DOUBLE_EQ(ho->mapper().zones().safe, 0.2);
}

TEST(PolicyRegistrySpecs, OverridesWinOverBaseParams)
{
    Platform platform(Platform::junoR1());
    auto ctx = defaultContext(platform);
    ctx.hipster.bucketPercent = 8.0; // workload-tuned base
    const auto tuned =
        PolicyRegistry::instance().make("hipster-in", ctx);
    EXPECT_DOUBLE_EQ(hipsterParamsOf(*tuned).bucketPercent, 8.0);
    const auto overridden =
        PolicyRegistry::instance().make("hipster-in:bucket=3", ctx);
    EXPECT_DOUBLE_EQ(hipsterParamsOf(*overridden).bucketPercent, 3.0);
    // Unset keys keep the caller's base, not the schema default.
    EXPECT_DOUBLE_EQ(hipsterParamsOf(*overridden).alpha, 0.6);
}

TEST(PolicyRegistrySpecs, AliasesBuildTheCanonicalPolicy)
{
    Platform platform(Platform::junoR1());
    const auto ctx = defaultContext(platform);
    EXPECT_EQ(PolicyRegistry::instance().make("hipster", ctx)->name(),
              "HipsterIn");
    EXPECT_EQ(PolicyRegistry::instance().make("octopus", ctx)->name(),
              "Octopus-Man");
    // Aliases accept overrides like the canonical head.
    const auto aliased = PolicyRegistry::instance().make(
        "hipster:bucket=8", ctx);
    EXPECT_DOUBLE_EQ(hipsterParamsOf(*aliased).bucketPercent, 8.0);
}

TEST(PolicyRegistrySpecs, VariantsAreForcedPerFamily)
{
    Platform platform(Platform::junoR1());
    auto ctx = defaultContext(platform);
    ctx.hipster.variant = PolicyVariant::Collocated;
    // hipster-in forces the interactive variant regardless of base.
    const auto in = PolicyRegistry::instance().make("hipster-in", ctx);
    EXPECT_EQ(hipsterParamsOf(*in).variant,
              PolicyVariant::Interactive);
    const auto co = PolicyRegistry::instance().make("hipster-co", ctx);
    EXPECT_EQ(hipsterParamsOf(*co).variant, PolicyVariant::Collocated);
    // Octopus-Man inherits the caller's variant (Figure 11 wiring).
    const auto om = PolicyRegistry::instance().make("octopus", ctx);
    const auto *octopus =
        dynamic_cast<const OctopusManPolicy *>(om.get());
    ASSERT_NE(octopus, nullptr);
    EXPECT_EQ(octopus->params().variant, PolicyVariant::Collocated);
}

TEST(PolicyRegistryValidation, IsPolicySpecAndValidate)
{
    EXPECT_TRUE(isPolicySpec("hipster-in"));
    EXPECT_TRUE(isPolicySpec("hipster"));
    EXPECT_TRUE(isPolicySpec("octopus"));
    EXPECT_TRUE(isPolicySpec("hipster-in:bucket=8,learn=600"));
    EXPECT_TRUE(isPolicySpec("octopus-man:up=0.85,down=0.6"));
    EXPECT_FALSE(isPolicySpec("nonexistent"));
    EXPECT_FALSE(isPolicySpec("hipster-in:bucket=999"));
    EXPECT_FALSE(isPolicySpec("hipster-in:nope=1"));
    EXPECT_FALSE(isPolicySpec(""));
}

TEST(PolicyRegistryValidation, RegistrationRejectsDuplicatesAndNulls)
{
    PolicyRegistry &registry = PolicyRegistry::instance();
    EXPECT_THROW(
        registry.registerPolicy({"hipster-in", {}, "Dup", "dup", "",
                                 false, {}},
                                nullptr),
        FatalError);
    // An alias clash is a registration error too.
    EXPECT_THROW(registry.registerPolicy(
                     {"brand-new", {"octopus"}, "New", "new", "",
                      false, {}},
                     [](const PolicyRegistry::BuildContext &,
                        const PolicyParamSet &)
                         -> std::unique_ptr<TaskPolicy> {
                         return nullptr;
                     }),
                 FatalError);
}

TEST(PolicyListSplitting, SemicolonAlwaysSeparates)
{
    const auto specs = splitPolicyList(
        "hipster-in:bucket=5;hipster-in:bucket=8");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0], "hipster-in:bucket=5");
    EXPECT_EQ(specs[1], "hipster-in:bucket=8");
}

TEST(PolicyListSplitting, KeepsInSpecCommasIntact)
{
    // key=value commas survive; a comma splits only before a
    // registered policy head (canonical or alias).
    const auto specs = splitPolicyList(
        "hipster-in:bucket=5,learn=600,octopus-man:up=0.9,down=0.2,"
        "static-big");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0], "hipster-in:bucket=5,learn=600");
    EXPECT_EQ(specs[1], "octopus-man:up=0.9,down=0.2");
    EXPECT_EQ(specs[2], "static-big");
}

TEST(PolicyListSplitting, SingleSpecAndLegacyLists)
{
    const auto one = splitPolicyList("hipster-in");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], "hipster-in");
    // The PR-2 era comma list still works for bare names.
    const auto legacy =
        splitPolicyList("hipster-in,octopus-man,static-big");
    ASSERT_EQ(legacy.size(), 3u);
    EXPECT_EQ(legacy[0], "hipster-in");
    EXPECT_EQ(legacy[1], "octopus-man");
    EXPECT_EQ(legacy[2], "static-big");
    // Aliases split too.
    const auto aliased = splitPolicyList("hipster:bucket=8,octopus");
    ASSERT_EQ(aliased.size(), 2u);
    EXPECT_EQ(aliased[0], "hipster:bucket=8");
    EXPECT_EQ(aliased[1], "octopus");
}

} // namespace
} // namespace hipster
