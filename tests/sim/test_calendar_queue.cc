/**
 * @file
 * Equivalence layer for the calendar-queue backend: randomized
 * differential tests driving the calendar queue and the time-ordered
 * heap through identical schedule/run/cancel interleavings and
 * asserting event-for-event identical pop order — including FIFO
 * tie-breaking among same-timestamp events — plus direct unit tests
 * of the calendar geometry (growth, shrink, sparse years, rewinds).
 *
 * This is the determinism contract that lets the simulator switch
 * backends without disturbing any golden: the two queues implement
 * the same (when, seq) total order.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "sim/calendar_queue.hh"
#include "sim/event_queue.hh"

namespace hipster
{
namespace
{

/** One observed event execution: which event fired, and when. */
using Fired = std::pair<std::uint64_t, Seconds>;

/**
 * Drives two EventQueue backends through the same operation stream.
 * Every schedule targets both queues with the same (when, id), so
 * the sequence numbers — and therefore the tie-breaking — must
 * coincide.
 */
struct QueuePair
{
    EventQueue heap{EventQueue::Backend::TimeOrdered};
    EventQueue calendar{EventQueue::Backend::Calendar};
    std::vector<Fired> heapLog;
    std::vector<Fired> calendarLog;
    std::uint64_t nextId = 0;

    void
    schedule(Seconds when)
    {
        const std::uint64_t id = nextId++;
        heap.schedule(when, [this, id](Seconds now) {
            heapLog.emplace_back(id, now);
        });
        calendar.schedule(when, [this, id](Seconds now) {
            calendarLog.emplace_back(id, now);
        });
    }

    void
    expectLogsIdentical() const
    {
        ASSERT_EQ(heapLog.size(), calendarLog.size());
        for (std::size_t i = 0; i < heapLog.size(); ++i) {
            ASSERT_EQ(heapLog[i].first, calendarLog[i].first)
                << "pop order diverged at event " << i;
            ASSERT_EQ(heapLog[i].second, calendarLog[i].second)
                << "timestamps diverged at event " << i;
        }
    }
};

class DifferentialInterleaving
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DifferentialInterleaving, IdenticalPopOrderUnderRandomOps)
{
    Rng rng(GetParam());
    QueuePair pair;
    Seconds now = 0.0;

    for (int step = 0; step < 4000; ++step) {
        const double r = rng.uniform();
        if (r < 0.55) {
            // Schedule, drawing the timestamp from a mixture that
            // covers sim-like monotone advance, exact ties (integer
            // quantized), far scatter including the past, and bursty
            // exponential gaps.
            Seconds when = 0.0;
            switch (rng.uniformInt(0, 3)) {
            case 0:
                when = now + rng.uniform(0.0, 10.0);
                break;
            case 1:
                when = now + std::floor(rng.uniform(0.0, 6.0));
                break;
            case 2:
                when = rng.uniform(0.0, 1000.0);
                break;
            default:
                when = now + rng.exponential(5.0);
                break;
            }
            pair.schedule(when);
        } else if (r < 0.80) {
            ASSERT_EQ(pair.heap.empty(), pair.calendar.empty());
            if (!pair.heap.empty()) {
                const Seconds th = pair.heap.runOne();
                const Seconds tc = pair.calendar.runOne();
                ASSERT_EQ(th, tc);
                now = std::max(now, th);
            }
        } else if (r < 0.95) {
            const Seconds until = now + rng.uniform(0.0, 20.0);
            const std::size_t nh = pair.heap.runUntil(until);
            const std::size_t nc = pair.calendar.runUntil(until);
            ASSERT_EQ(nh, nc);
            now = std::max(now, until);
        } else {
            // Cancel every pending event (the queue's cancellation
            // primitive), interleaved with the schedules above.
            pair.heap.clear();
            pair.calendar.clear();
        }
        ASSERT_EQ(pair.heap.size(), pair.calendar.size());
        ASSERT_EQ(pair.heap.processed(), pair.calendar.processed());
    }

    // Drain whatever is left and compare the full execution logs.
    while (!pair.heap.empty()) {
        ASSERT_EQ(pair.heap.runOne(), pair.calendar.runOne());
    }
    EXPECT_TRUE(pair.calendar.empty());
    pair.expectLogsIdentical();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DifferentialInterleaving,
    ::testing::Values(1ULL, 2ULL, 3ULL, 17ULL, 1234ULL, 0xdeadbeefULL,
                      0x9e3779b97f4a7c15ULL, 424242ULL),
    [](const ::testing::TestParamInfo<std::uint64_t> &info) {
        return "seed_" + std::to_string(info.index);
    });

TEST(DifferentialTies, SameTimestampPopsInInsertionOrder)
{
    // A dense block of exact ties interleaved across two timestamps:
    // both backends must fire strictly in insertion order within a
    // timestamp.
    QueuePair pair;
    for (int i = 0; i < 100; ++i)
        pair.schedule(i % 2 ? 1.0 : 2.0);
    while (!pair.heap.empty()) {
        pair.heap.runOne();
        pair.calendar.runOne();
    }
    pair.expectLogsIdentical();
    // FIFO within each timestamp: odd ids (t=1) first, ascending,
    // then even ids ascending.
    ASSERT_EQ(pair.calendarLog.size(), 100u);
    for (std::size_t i = 1; i < 50; ++i) {
        EXPECT_LT(pair.calendarLog[i - 1].first,
                  pair.calendarLog[i].first);
        EXPECT_EQ(pair.calendarLog[i - 1].second, 1.0);
    }
    for (std::size_t i = 51; i < 100; ++i) {
        EXPECT_LT(pair.calendarLog[i - 1].first,
                  pair.calendarLog[i].first);
        EXPECT_EQ(pair.calendarLog[i].second, 2.0);
    }
}

TEST(CalendarQueueGeometry, GrowsAndShrinksWithOccupancy)
{
    CalendarQueue queue;
    const std::size_t initial = queue.bucketCount();
    for (int i = 0; i < 5000; ++i)
        queue.insert(i * 0.001, i, [](Seconds) {});
    EXPECT_GT(queue.bucketCount(), initial);
    EXPECT_EQ(queue.size(), 5000u);
    Seconds last = -1.0;
    while (!queue.empty()) {
        const auto popped = queue.popMin();
        EXPECT_GE(popped.when, last);
        last = popped.when;
    }
    // Draining shrinks the calendar back down.
    EXPECT_EQ(queue.bucketCount(), initial);
}

TEST(CalendarQueueGeometry, SparseFarFutureEventIsFound)
{
    // One event many "years" past the cursor exercises the direct-
    // search fallback after a fruitless lap.
    CalendarQueue queue;
    queue.insert(0.5, 0, [](Seconds) {});
    EXPECT_EQ(queue.popMin().when, 0.5);
    queue.insert(1.0e6, 1, [](Seconds) {});
    EXPECT_EQ(queue.minTime(), 1.0e6);
    EXPECT_EQ(queue.popMin().when, 1.0e6);
    EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueGeometry, PastInsertRewindsTheCursor)
{
    CalendarQueue queue;
    for (int i = 0; i < 100; ++i)
        queue.insert(100.0 + i, i, [](Seconds) {});
    EXPECT_EQ(queue.popMin().when, 100.0);
    // Now insert far before the cursor: it must pop first.
    queue.insert(-5.0, 1000, [](Seconds) {});
    queue.insert(0.25, 1001, [](Seconds) {});
    EXPECT_EQ(queue.minTime(), -5.0);
    EXPECT_EQ(queue.popMin().when, -5.0);
    EXPECT_EQ(queue.popMin().when, 0.25);
    EXPECT_EQ(queue.popMin().when, 101.0);
}

TEST(EventQueueBackends, DefaultIsCalendarAndBothBackendsWork)
{
    EventQueue byDefault;
    EXPECT_EQ(byDefault.backend(), EventQueue::Backend::Calendar);

    for (const auto backend : {EventQueue::Backend::TimeOrdered,
                               EventQueue::Backend::Calendar}) {
        EventQueue queue(backend);
        std::vector<Seconds> fired;
        queue.schedule(3.0, [&](Seconds t) { fired.push_back(t); });
        queue.schedule(1.0, [&](Seconds t) { fired.push_back(t); });
        queue.schedule(2.0, [&](Seconds t) {
            fired.push_back(t);
            queue.schedule(2.5, [&](Seconds u) { fired.push_back(u); });
        });
        EXPECT_EQ(queue.runUntil(10.0), 4u);
        const std::vector<Seconds> expected{1.0, 2.0, 2.5, 3.0};
        EXPECT_EQ(fired, expected);
        EXPECT_EQ(queue.processed(), 4u);
    }
}

} // namespace
} // namespace hipster
