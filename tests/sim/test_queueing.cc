/**
 * @file
 * Tests for the heterogeneous multi-server queueing system: service
 * timing, FCFS dispatch, reconfiguration (migration/DVFS), stalls,
 * drops and usage accounting. Includes an M/M/1-style property
 * check against queueing theory.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "sim/queueing.hh"

namespace hipster
{
namespace
{

Request
makeRequest(Seconds arrival, Instructions insn, Seconds stall = 0.0)
{
    Request r;
    r.arrival = arrival;
    r.computeInsn = insn;
    r.memStall = stall;
    return r;
}

class QueueingTest : public ::testing::Test
{
  protected:
    QueueingTest() : system(events) {}

    std::vector<CompletedRequest> completed;

    void
    captureCompletions()
    {
        system.setCompletionCallback(
            [this](const CompletedRequest &done) {
                completed.push_back(done);
            });
    }

    EventQueue events;
    QueueingSystem system;
};

TEST_F(QueueingTest, SingleRequestServiceTime)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 5e8)); // 0.5 s of compute
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(completed[0].latency(), 0.5, 1e-9);
    EXPECT_NEAR(completed[0].completed, 0.5, 1e-9);
}

TEST_F(QueueingTest, MemStallAddsUnscaledTime)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 1e8, 0.2)); // 0.1s compute + 0.2s
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(completed[0].latency(), 0.3, 1e-9);
}

TEST_F(QueueingTest, StallScaleInflatesMemoryPortion)
{
    captureCompletions();
    system.configure({{1e9, 2.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 1e8, 0.2));
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(completed[0].latency(), 0.1 + 0.4, 1e-9);
}

TEST_F(QueueingTest, FcfsQueueingDelay)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 1e9)); // 1 s
    system.submit(makeRequest(0.1, 1e9)); // waits until 1.0
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 2u);
    EXPECT_NEAR(completed[1].started, 1.0, 1e-9);
    EXPECT_NEAR(completed[1].latency(), 1.9, 1e-9);
}

TEST_F(QueueingTest, FastestIdleServerPicked)
{
    captureCompletions();
    // Server 0 slow, server 1 fast.
    system.configure({{1e8, 1.0, 0}, {1e9, 1.0, 1}}, 0.0);
    system.submit(makeRequest(0.0, 1e8));
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 1u);
    // Served by the fast server: 0.1 s, not 1.0 s.
    EXPECT_NEAR(completed[0].latency(), 0.1, 1e-9);
}

TEST_F(QueueingTest, TwoServersServeInParallel)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}, {1e9, 1.0, 1}}, 0.0);
    system.submit(makeRequest(0.0, 1e9));
    system.submit(makeRequest(0.0, 1e9));
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 2u);
    EXPECT_NEAR(completed[0].latency(), 1.0, 1e-9);
    EXPECT_NEAR(completed[1].latency(), 1.0, 1e-9);
}

TEST_F(QueueingTest, DvfsSlowdownStretchesInFlightRequest)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 1e9)); // 1 s at full speed
    events.runUntil(0.5);                 // half done
    system.configure({{5e8, 1.0, 0}}, 0.5); // half speed
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 1u);
    // Remaining 5e8 instructions at 5e8 IPS = 1 s more.
    EXPECT_NEAR(completed[0].latency(), 1.5, 1e-9);
}

TEST_F(QueueingTest, DvfsSpeedupShortensInFlightRequest)
{
    captureCompletions();
    system.configure({{5e8, 1.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 1e9)); // 2 s at half speed
    events.runUntil(1.0);                 // half done
    system.configure({{1e9, 1.0, 0}}, 1.0);
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(completed[0].latency(), 1.5, 1e-9);
}

TEST_F(QueueingTest, RemovedServerRequeuesWorkAtFront)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}, {1e9, 1.0, 1}}, 0.0);
    system.submit(makeRequest(0.0, 1e9)); // server 0 (or fastest)
    system.submit(makeRequest(0.0, 1e9)); // server 1
    system.submit(makeRequest(0.0, 1e9)); // queued
    events.runUntil(0.5);
    // Shrink to one server: the displaced in-flight request must
    // resume before the queued one.
    system.configure({{1e9, 1.0, 0}}, 0.5);
    events.runUntil(20.0);
    ASSERT_EQ(completed.size(), 3u);
    // All three eventually complete; total work is 3 s on 1 server
    // after 0.5 s of 2 servers. Last completion ~= 0.5 + 2.0 s.
    EXPECT_NEAR(completed.back().completed, 2.5, 1e-6);
}

TEST_F(QueueingTest, MigrationPreservesArrivalStamps)
{
    captureCompletions();
    // Server 1 is faster, so the request lands there — and server 1
    // is the one removed by the shrink.
    system.configure({{1e9, 1.0, 0}, {2e9, 1.0, 1}}, 0.0);
    system.submit(makeRequest(0.25, 1e9)); // 0.5 s on server 1
    events.runUntil(0.5);                  // half done
    system.configure({{1e9, 1.0, 0}}, 0.5);
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(completed[0].arrival, 0.25, 1e-9);
    // Remaining 5e8 insn now runs on the slower server: finishes at
    // 0.5 + 0.5 = 1.0, latency 0.75 s (0.5 s undisturbed).
    EXPECT_NEAR(completed[0].latency(), 0.75, 1e-9);
}

TEST_F(QueueingTest, StallPushesCompletionsBack)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 1e9)); // would finish at 1.0
    events.runUntil(0.5);
    system.stall(0.5, 0.51); // 10 ms migration pause
    events.runUntil(10.0);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(completed[0].latency(), 1.01, 1e-6);
}

TEST_F(QueueingTest, DropsWhenWaitingRoomFull)
{
    EventQueue q;
    QueueingSystem bounded(q, /*max_queue=*/2);
    bounded.configure({{1e9, 1.0, 0}}, 0.0);
    bounded.submit(makeRequest(0.0, 1e9)); // in service
    bounded.submit(makeRequest(0.0, 1e9)); // queued 1
    bounded.submit(makeRequest(0.0, 1e9)); // queued 2
    bounded.submit(makeRequest(0.0, 1e9)); // dropped
    EXPECT_EQ(bounded.dropped(), 1u);
    EXPECT_EQ(bounded.queueLength(), 2u);
}

TEST_F(QueueingTest, UsageAccountsBusyTimeAndInstructions)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}, {1e9, 1.0, 7}}, 0.0);
    system.submit(makeRequest(0.0, 5e8)); // 0.5 s on fastest idle
    events.runUntil(1.0);
    auto usage = system.harvestUsage(1.0);
    ASSERT_EQ(usage.size(), 2u);
    const double total_busy = usage[0].busyTime + usage[1].busyTime;
    const double total_insn =
        usage[0].instructions + usage[1].instructions;
    EXPECT_NEAR(total_busy, 0.5, 1e-9);
    EXPECT_NEAR(total_insn, 5e8, 1.0);
    // Core ids flow through for perf-counter attribution.
    EXPECT_EQ(usage[1].core, 7u);
}

TEST_F(QueueingTest, HarvestSplitsBusyAcrossIntervals)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 2e9)); // 2 s request
    events.runUntil(1.0);
    auto first = system.harvestUsage(1.0);
    EXPECT_NEAR(first[0].busyTime, 1.0, 1e-9);
    events.runUntil(3.0);
    auto second = system.harvestUsage(3.0);
    EXPECT_NEAR(second[0].busyTime, 1.0, 1e-9);
    const double insn = first[0].instructions + second[0].instructions;
    EXPECT_NEAR(insn, 2e9, 1e3);
}

TEST_F(QueueingTest, ResetDrainsEverything)
{
    captureCompletions();
    system.configure({{1e9, 1.0, 0}}, 0.0);
    system.submit(makeRequest(0.0, 1e9));
    system.submit(makeRequest(0.0, 1e9));
    system.reset();
    events.runUntil(10.0);
    EXPECT_TRUE(completed.empty());
    EXPECT_EQ(system.queueLength(), 0u);
    EXPECT_EQ(system.inService(), 0u);
}

/**
 * Property check against M/M/1 theory: with Poisson arrivals (rate
 * lambda) and exponential service (rate mu) on one server, the mean
 * sojourn time is 1/(mu - lambda).
 */
TEST_F(QueueingTest, MM1MeanSojournMatchesTheory)
{
    captureCompletions();
    const double mu = 1000.0;     // services/sec
    const double lambda = 700.0;  // arrivals/sec (rho = 0.7)
    system.configure({{1e9, 1.0, 0}}, 0.0);

    Rng rng(99);
    Seconds t = 0.0;
    const Seconds horizon = 400.0;
    while (true) {
        t += rng.exponential(lambda);
        if (t >= horizon)
            break;
        const double service = rng.exponential(mu);
        // Arrivals must enter the system at their arrival time.
        const Request request = makeRequest(t, service * 1e9);
        events.schedule(t, [this, request](Seconds) {
            system.submit(request);
        });
    }
    events.runUntil(horizon + 10.0);

    ASSERT_GT(completed.size(), 100000u);
    double sum = 0.0;
    for (const auto &done : completed)
        sum += done.latency();
    const double mean = sum / completed.size();
    const double theory = 1.0 / (mu - lambda);
    EXPECT_NEAR(mean, theory, theory * 0.05);
}

} // namespace
} // namespace hipster
