/**
 * @file
 * Tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace hipster
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&](Seconds) { order.push_back(3); });
    q.schedule(1.0, [&](Seconds) { order.push_back(1); });
    q.schedule(2.0, [&](Seconds) { order.push_back(2); });
    q.runUntil(10.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&, i](Seconds) { order.push_back(i); });
    q.runUntil(1.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&](Seconds) { ++fired; });
    q.schedule(2.0, [&](Seconds) { ++fired; });
    q.schedule(2.0001, [&](Seconds) { ++fired; });
    EXPECT_EQ(q.runUntil(2.0), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, HandlerReceivesTimestamp)
{
    EventQueue q;
    Seconds seen = -1.0;
    q.schedule(4.5, [&](Seconds now) { seen = now; });
    q.runUntil(5.0);
    EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void(Seconds)> chain = [&](Seconds now) {
        ++count;
        if (count < 10)
            q.schedule(now + 1.0, chain);
    };
    q.schedule(0.0, chain);
    q.runUntil(100.0);
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, ChainedEventsBeyondHorizonStayPending)
{
    EventQueue q;
    int count = 0;
    std::function<void(Seconds)> chain = [&](Seconds now) {
        ++count;
        q.schedule(now + 1.0, chain);
    };
    q.schedule(0.0, chain);
    q.runUntil(4.5);
    EXPECT_EQ(count, 5); // t=0,1,2,3,4
    EXPECT_EQ(q.size(), 1u);
    q.runUntil(6.0);
    EXPECT_EQ(count, 7);
}

TEST(EventQueue, NextTimeAndEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.schedule(7.0, [](Seconds) {});
    EXPECT_FALSE(q.empty());
    EXPECT_DOUBLE_EQ(q.nextTime(), 7.0);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&](Seconds) { ++fired; });
    q.clear();
    q.runUntil(10.0);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ProcessedCounts)
{
    EventQueue q;
    for (int i = 0; i < 3; ++i)
        q.schedule(i, [](Seconds) {});
    q.runUntil(10.0);
    EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueueDeath, RunOneOnEmptyPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.runOne(), "empty");
}

} // namespace
} // namespace hipster
