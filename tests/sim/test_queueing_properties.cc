/**
 * @file
 * Property-based tests for the queueing system, parameterized over
 * server topologies and offered loads: conservation of requests,
 * latency lower bounds, FCFS start ordering, and work conservation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/random.hh"
#include "sim/queueing.hh"

namespace hipster
{
namespace
{

struct QueueScenario
{
    std::vector<double> serverRatesGips; ///< per-server rate in GIPS
    double offeredRate;                  ///< arrivals per second
    double meanDemandGi;                 ///< mean demand, Giga-insn
    double cv;                           ///< demand variability

    friend std::ostream &
    operator<<(std::ostream &os, const QueueScenario &s)
    {
        os << s.serverRatesGips.size() << "srv_rate" << s.offeredRate
           << "_cv" << s.cv;
        return os;
    }
};

class QueueingProperties
    : public ::testing::TestWithParam<QueueScenario>
{
  protected:
    struct Outcome
    {
        std::vector<CompletedRequest> completed;
        std::uint64_t submitted = 0;
        std::uint64_t dropped = 0;
        std::size_t queued = 0;
        std::size_t inService = 0;
        double busyTime = 0.0;
        double fastestRate = 0.0;
    };

    Outcome
    runScenario(const QueueScenario &s, Seconds horizon)
    {
        EventQueue events;
        QueueingSystem system(events, /*max_queue=*/5000);
        Outcome out;

        std::vector<ServerSpec> servers;
        CoreId core = 0;
        for (double gips : s.serverRatesGips) {
            servers.push_back({gips * 1e9, 1.0, core++});
            out.fastestRate = std::max(out.fastestRate, gips * 1e9);
        }
        system.configure(servers, 0.0);
        system.setCompletionCallback(
            [&](const CompletedRequest &done) {
                out.completed.push_back(done);
            });

        Rng rng(1234);
        Seconds t = 0.0;
        while (true) {
            t += rng.exponential(s.offeredRate);
            if (t >= horizon)
                break;
            Request request;
            request.arrival = t;
            request.computeInsn =
                s.meanDemandGi * 1e9 * rng.lognormalMeanCv(1.0, s.cv);
            ++out.submitted;
            events.schedule(t, [&system, request](Seconds) {
                system.submit(request);
            });
        }
        events.runUntil(horizon);
        const auto usage = system.harvestUsage(horizon);
        for (const auto &use : usage)
            out.busyTime += use.busyTime;
        out.dropped = system.dropped();
        out.queued = system.queueLength();
        out.inService = system.inService();
        return out;
    }
};

TEST_P(QueueingProperties, RequestsAreConserved)
{
    const auto out = runScenario(GetParam(), 50.0);
    // Every submitted request is completed, queued, in service or
    // dropped — none vanish, none duplicate.
    EXPECT_EQ(out.submitted, out.completed.size() + out.queued +
                                 out.inService + out.dropped);
}

TEST_P(QueueingProperties, LatencyNeverBelowFastestServiceTime)
{
    const auto out = runScenario(GetParam(), 50.0);
    for (const auto &done : out.completed) {
        ASSERT_GE(done.completed, done.arrival);
        ASSERT_GE(done.started + 1e-12, done.arrival);
        // A request cannot finish faster than the fastest server
        // could possibly execute the *smallest* demand — trivially,
        // latency is positive and at least service on the fastest
        // server would take > 0.
        ASSERT_GT(done.latency(), 0.0);
    }
}

TEST_P(QueueingProperties, StartsFollowArrivalOrder)
{
    const auto out = runScenario(GetParam(), 50.0);
    // FCFS: requests enter service in arrival order. Sort completions
    // by arrival and check started times are non-decreasing.
    auto sorted = out.completed;
    std::sort(sorted.begin(), sorted.end(),
              [](const CompletedRequest &a, const CompletedRequest &b) {
                  return a.arrival < b.arrival;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i)
        ASSERT_GE(sorted[i].started + 1e-9, sorted[i - 1].started);
}

TEST_P(QueueingProperties, BusyTimeBoundedByCapacity)
{
    const QueueScenario &s = GetParam();
    const auto out = runScenario(s, 50.0);
    // Total busy time cannot exceed servers x horizon.
    EXPECT_LE(out.busyTime,
              50.0 * s.serverRatesGips.size() + 1e-6);
}

TEST_P(QueueingProperties, UnderloadedSystemCompletesNearlyEverything)
{
    const QueueScenario &s = GetParam();
    // Only meaningful when offered work fits comfortably.
    double capacity_gips = 0.0;
    for (double gips : s.serverRatesGips)
        capacity_gips += gips;
    const double offered_gips = s.offeredRate * s.meanDemandGi;
    if (offered_gips > 0.6 * capacity_gips)
        GTEST_SKIP() << "not an underload scenario";
    const auto out = runScenario(s, 50.0);
    EXPECT_EQ(out.dropped, 0u);
    EXPECT_GT(out.completed.size(), out.submitted * 9 / 10);
}

TEST_P(QueueingProperties, OverloadSheddingKicksIn)
{
    QueueScenario s = GetParam();
    // Push the same topology to 3x its capacity: the bounded waiting
    // room must eventually drop and the queue must sit at its cap.
    double capacity_gips = 0.0;
    for (double gips : s.serverRatesGips)
        capacity_gips += gips;
    s.offeredRate = 3.0 * capacity_gips / s.meanDemandGi;
    const auto out = runScenario(s, 50.0);
    EXPECT_GT(out.dropped, 0u);
    // The waiting room sits at (or within a departure of) its cap.
    EXPECT_GE(out.queued, 4990u);
    EXPECT_LE(out.queued, 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, QueueingProperties,
    ::testing::Values(
        // one fast server, moderate load, low variance
        QueueScenario{{2.0}, 300.0, 0.004, 0.3},
        // one slow server, high utilization, heavy tail
        QueueScenario{{0.5}, 100.0, 0.004, 2.0},
        // homogeneous pair
        QueueScenario{{1.0, 1.0}, 400.0, 0.003, 1.0},
        // heterogeneous big.LITTLE-like mix
        QueueScenario{{2.1, 2.1, 0.4, 0.4, 0.4, 0.4}, 900.0, 0.004,
                      1.5},
        // many tiny servers
        QueueScenario{{0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3}, 350.0,
                      0.004, 0.8}));

/**
 * Utilization law check: for an M/G/c queue below saturation, the
 * measured busy fraction approximates offered work / capacity.
 */
class UtilizationLaw : public ::testing::TestWithParam<double>
{
};

TEST_P(UtilizationLaw, BusyFractionMatchesOfferedLoad)
{
    const double rho = GetParam();
    EventQueue events;
    QueueingSystem system(events);
    const double rate_ips = 1e9;
    system.configure({{rate_ips, 1.0, 0}, {rate_ips, 1.0, 1}}, 0.0);
    system.setCompletionCallback([](const CompletedRequest &) {});

    // Offered work = rho * 2 servers.
    const double mean_demand = 2e6; // 2 ms at 1 GIPS
    const double lambda = rho * 2.0 * rate_ips / mean_demand;
    Rng rng(77);
    Seconds t = 0.0;
    const Seconds horizon = 200.0;
    while ((t += rng.exponential(lambda)) < horizon) {
        Request request;
        request.arrival = t;
        request.computeInsn = mean_demand * rng.lognormalMeanCv(1.0, 1.0);
        events.schedule(t, [&system, request](Seconds) {
            system.submit(request);
        });
    }
    events.runUntil(horizon);
    double busy = 0.0;
    for (const auto &use : system.harvestUsage(horizon))
        busy += use.busyTime;
    const double measured = busy / (2.0 * horizon);
    EXPECT_NEAR(measured, rho, 0.03) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, UtilizationLaw,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85));

} // namespace
} // namespace hipster
