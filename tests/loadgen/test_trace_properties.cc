/**
 * @file
 * Property tests over the trace-synthesis subsystem: for every
 * registered family (via its canonical example spec) and a matrix of
 * transform-composed and spliced specs, `at()` must be finite,
 * non-negative and a pure function of (spec, duration, seed);
 * stochastic specs must differ across seeds and deterministic ones
 * must not. Registry coverage is asserted dynamically, so a newly
 * registered family without a property-tested example fails here.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "loadgen/trace_registry.hh"

namespace hipster
{
namespace
{

constexpr Seconds kDuration = 400.0;
constexpr std::uint64_t kSeed = 1234;

/** One property-tested spec with its expected seed sensitivity. */
struct SpecCase
{
    std::string spec;
    bool stochastic;
};

std::vector<SpecCase>
specCases()
{
    std::vector<SpecCase> cases;
    // Every registered family's canonical example (replay has none —
    // it needs a file on disk and is covered by test_trace_replay).
    for (const TraceFamilyInfo &family :
         TraceRegistry::instance().families()) {
        if (!family.example.empty())
            cases.push_back({family.example, family.stochastic});
    }
    // Bare family names exercise the argument defaults.
    cases.push_back({"ramp", false});
    cases.push_back({"mmpp", true});
    cases.push_back({"flashcrowd", false});
    cases.push_back({"sine", false});
    // Each transform combinator over a base, and stacked pipelines.
    cases.push_back({"diurnal|scale:0.5", true});
    cases.push_back({"constant:0.6|scale:1.5", false});
    cases.push_back({"sine:0.5,0.3,100|offset:-0.4", false});
    cases.push_back({"ramp|offset:0.2", false});
    cases.push_back({"mmpp:0.1,1.4,30|clip:0.2,0.9", true});
    cases.push_back({"constant:0.5|noise:0.1", true});
    cases.push_back({"constant:0.5|jitter:0.1", true});
    cases.push_back({"flashcrowd|repeat:120", false});
    cases.push_back({"diurnal|noise:0.05|clip:0.05,1.0", true});
    cases.push_back({"sine:0.4,0.6,80|jitter:0.2,2,1.1|scale:0.9",
                     true});
    // Splices, including stochastic segments and open-ended tails.
    cases.push_back({"constant:0.3@100+ramp:0.3,0.9,0,50@100+"
                     "constant:0.9",
                     false});
    cases.push_back({"diurnal@200+mmpp:0.2,0.8,25", true});
    cases.push_back({"flashcrowd:0.2,0.9,50,10,40@150+sine:0.5,0.2,90",
                     false});
    return cases;
}

std::vector<Seconds>
samplePoints()
{
    std::vector<Seconds> points;
    // Dense over the run, plus boundary and out-of-range probes.
    for (Seconds t = 0.0; t <= kDuration; t += 3.7)
        points.push_back(t);
    points.push_back(-5.0);
    points.push_back(kDuration * 2.5);
    return points;
}

class TraceProperties : public ::testing::TestWithParam<SpecCase>
{
};

TEST_P(TraceProperties, AtIsFiniteAndNonNegative)
{
    const auto trace = makeTrace(GetParam().spec, kDuration, kSeed);
    for (Seconds t : samplePoints()) {
        const Fraction load = trace->at(t);
        ASSERT_TRUE(std::isfinite(load))
            << GetParam().spec << " at t=" << t;
        ASSERT_GE(load, 0.0) << GetParam().spec << " at t=" << t;
    }
}

TEST_P(TraceProperties, DeterministicUnderAFixedSeed)
{
    const auto a = makeTrace(GetParam().spec, kDuration, kSeed);
    const auto b = makeTrace(GetParam().spec, kDuration, kSeed);
    for (Seconds t : samplePoints()) {
        // Two instances agree bit-for-bit, and repeated sampling of
        // one instance is a pure function of time.
        ASSERT_EQ(a->at(t), b->at(t))
            << GetParam().spec << " at t=" << t;
        ASSERT_EQ(a->at(t), a->at(t))
            << GetParam().spec << " at t=" << t;
    }
}

TEST_P(TraceProperties, SeedSensitivityMatchesTheCatalog)
{
    const auto a = makeTrace(GetParam().spec, kDuration, kSeed);
    const auto b = makeTrace(GetParam().spec, kDuration, kSeed + 1);
    std::size_t differ = 0;
    for (Seconds t : samplePoints())
        differ += a->at(t) != b->at(t) ? 1 : 0;
    if (GetParam().stochastic) {
        EXPECT_GT(differ, 0u)
            << GetParam().spec
            << " is stochastic but identical across seeds";
    } else {
        EXPECT_EQ(differ, 0u)
            << GetParam().spec
            << " is deterministic but varied across seeds";
    }
}

TEST_P(TraceProperties, ValidatesAndSurvivesRoundTripValidation)
{
    EXPECT_TRUE(isTraceSpec(GetParam().spec)) << GetParam().spec;
    EXPECT_NO_THROW(validateTraceSpec(GetParam().spec));
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, TraceProperties, ::testing::ValuesIn(specCases()),
    [](const ::testing::TestParamInfo<SpecCase> &info) {
        std::string name = info.param.spec;
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + "_" + std::to_string(info.index);
    });

TEST(TracePropertyCoverage, EveryRegisteredFamilyHasAPropertyCase)
{
    // A newly registered family must either carry a canonical
    // example (picked up automatically above) or be replay-style
    // file input, which test_trace_replay covers.
    const auto cases = specCases();
    for (const TraceFamilyInfo &family :
         TraceRegistry::instance().families()) {
        if (family.example.empty()) {
            EXPECT_TRUE(family.rawArgs)
                << family.name
                << " has no example spec and is not file-based";
            continue;
        }
        const bool covered = std::any_of(
            cases.begin(), cases.end(), [&](const SpecCase &c) {
                return c.spec == family.example;
            });
        EXPECT_TRUE(covered) << family.name;
    }
}

TEST(TracePropertyCoverage, StochasticFlagsAgreeWithTheRegistry)
{
    // The per-case stochastic expectations for bare family specs
    // must match the registry's own catalog flags.
    const TraceRegistry &registry = TraceRegistry::instance();
    for (const SpecCase &c : specCases()) {
        const std::string head = c.spec.substr(
            0, c.spec.find_first_of(":|@+"));
        if (c.spec != head && c.spec != head + ":" &&
            c.spec.find_first_of("|+") != std::string::npos)
            continue; // composed specs mix stages; skip
        for (const TraceFamilyInfo &family : registry.families()) {
            if (family.name == head &&
                c.spec.find('|') == std::string::npos &&
                c.spec.find('+') == std::string::npos) {
                EXPECT_EQ(c.stochastic, family.stochastic) << c.spec;
            }
        }
    }
}

} // namespace
} // namespace hipster
