/**
 * @file
 * CSV replay tests: a synthesized trace written with writeTraceCsv
 * (full double precision, common/csv) must reload via `replay:` with
 * bit-for-bit identical samples; malformed files — missing, empty,
 * wrong columns, non-numeric cells, unsorted times, negative loads —
 * must fail fast with FatalError.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/logging.hh"
#include "loadgen/trace_families.hh"
#include "loadgen/trace_registry.hh"

namespace hipster
{
namespace
{

/** A unique temp path per test, removed on teardown. */
class ReplayRoundTrip : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = ::testing::TempDir() + "hipster_replay_" +
                info->name() + ".csv";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    void
    writeRaw(const std::string &contents)
    {
        std::ofstream out(path_);
        out << contents;
    }

    /** Age the file's mtime past the replay cache's freshness guard
     * (recently written files are deliberately not cached). */
    void
    backdate()
    {
        namespace fs = std::filesystem;
        fs::last_write_time(
            path_, fs::file_time_type::clock::now() -
                       std::chrono::seconds(10));
    }

    std::string path_;
};

TEST_F(ReplayRoundTrip, SampledTraceReplaysBitForBit)
{
    // Synthesize a trace with noise (so the samples are irregular
    // doubles, the worst case for text round-trips), dump, reload.
    const auto original =
        makeTrace("diurnal|noise:0.05", 300.0, /*seed=*/99);
    writeTraceCsv(path_, *original, /*step=*/1.0, /*length=*/300.0);

    const auto replayed =
        makeTrace("replay:" + path_, 300.0, /*seed=*/1);
    for (Seconds t = 0.0; t <= 300.0; t += 1.0) {
        // Exactly at the sample points the replay is bit-identical.
        ASSERT_EQ(original->at(t), replayed->at(t)) << "t=" << t;
    }
    // Between samples the replay interpolates linearly; values stay
    // within the bracketing samples.
    for (Seconds t = 0.5; t < 300.0; t += 1.0) {
        const Fraction lo = std::min(original->at(t - 0.5),
                                     original->at(t + 0.5));
        const Fraction hi = std::max(original->at(t - 0.5),
                                     original->at(t + 0.5));
        ASSERT_GE(replayed->at(t), lo - 1e-12) << "t=" << t;
        ASSERT_LE(replayed->at(t), hi + 1e-12) << "t=" << t;
    }
}

TEST_F(ReplayRoundTrip, ReplayIsSeedInvariant)
{
    writeTraceCsv(path_, ConstantTrace(0.35), 1.0, 10.0);
    const auto a = makeTrace("replay:" + path_, 10.0, 1);
    const auto b = makeTrace("replay:" + path_, 10.0, 999);
    for (Seconds t = 0.0; t <= 10.0; t += 0.25)
        ASSERT_EQ(a->at(t), b->at(t));
}

TEST_F(ReplayRoundTrip, ReplayedTraceComposesWithTransforms)
{
    writeTraceCsv(path_, ConstantTrace(0.4), 1.0, 10.0);
    const auto scaled =
        makeTrace("replay:" + path_ + "|scale:2", 10.0, 1);
    EXPECT_DOUBLE_EQ(scaled->at(5.0), 0.8);
}

TEST_F(ReplayRoundTrip, DurationComesFromTheLastSample)
{
    writeTraceCsv(path_, ConstantTrace(0.4), 2.0, 50.0);
    const auto trace = ReplayTrace::fromCsv(path_);
    EXPECT_DOUBLE_EQ(trace->duration(), 50.0);
    EXPECT_EQ(trace->samples(), 26u); // 0, 2, ..., 50
    // Holds the edge values outside the recorded range.
    EXPECT_DOUBLE_EQ(trace->at(-5.0), 0.4);
    EXPECT_DOUBLE_EQ(trace->at(500.0), 0.4);
}

TEST_F(ReplayRoundTrip, RepeatedLoadsHitTheParseCache)
{
    writeTraceCsv(path_, ConstantTrace(0.4), 1.0, 10.0);
    // Only files whose mtime has settled are cached (a file touched
    // within the last mtime tick could be rewritten without the
    // cache noticing); backdate to simulate a recorded trace.
    backdate();
    const auto first = ReplayTrace::fromCsv(path_);
    const auto second = ReplayTrace::fromCsv(path_);
    // Same underlying parse: the file is read once per content.
    EXPECT_EQ(first.get(), second.get());
}

TEST_F(ReplayRoundTrip, FreshlyWrittenFilesAreNotCached)
{
    writeRaw("time_s,load\n0,0.5\n1,0.5\n");
    const auto first = ReplayTrace::fromCsv(path_);
    const auto second = ReplayTrace::fromCsv(path_);
    // A just-written file is re-parsed every time — no stale risk.
    EXPECT_NE(first.get(), second.get());
    EXPECT_DOUBLE_EQ(second->at(0.5), 0.5);
}

TEST_F(ReplayRoundTrip, RewritingTheFileInvalidatesTheCache)
{
    writeRaw("time_s,load\n0,0.5\n1,0.5\n");
    backdate();
    const auto before = ReplayTrace::fromCsv(path_);
    EXPECT_DOUBLE_EQ(before->at(0.5), 0.5);
    writeRaw("time_s,load\n0,0.25\n1,0.25\n10,0.75\n");
    backdate();
    const auto after = ReplayTrace::fromCsv(path_);
    EXPECT_DOUBLE_EQ(after->at(0.5), 0.25);
    EXPECT_EQ(after->samples(), 3u);
}

TEST_F(ReplayRoundTrip, MissingFileFailsFast)
{
    EXPECT_THROW(ReplayTrace::fromCsv(path_ + ".nope"), FatalError);
    EXPECT_FALSE(isTraceSpec("replay:" + path_ + ".nope"));
}

TEST_F(ReplayRoundTrip, EmptyFileFailsFast)
{
    writeRaw("");
    EXPECT_THROW(ReplayTrace::fromCsv(path_), FatalError);
}

TEST_F(ReplayRoundTrip, HeaderOnlyFailsFast)
{
    writeRaw("time_s,load\n");
    EXPECT_THROW(ReplayTrace::fromCsv(path_), FatalError);
}

TEST_F(ReplayRoundTrip, MissingColumnsFailFast)
{
    writeRaw("t,level\n0,0.5\n1,0.6\n");
    EXPECT_THROW(ReplayTrace::fromCsv(path_), FatalError);
}

TEST_F(ReplayRoundTrip, NonNumericCellFailsFast)
{
    writeRaw("time_s,load\n0,0.5\n1,banana\n");
    EXPECT_THROW(ReplayTrace::fromCsv(path_), FatalError);
}

TEST_F(ReplayRoundTrip, UnsortedTimesFailFast)
{
    writeRaw("time_s,load\n0,0.5\n2,0.6\n1,0.7\n");
    EXPECT_THROW(ReplayTrace::fromCsv(path_), FatalError);
    // Duplicate timestamps are equally rejected.
    writeRaw("time_s,load\n0,0.5\n1,0.6\n1,0.7\n");
    EXPECT_THROW(ReplayTrace::fromCsv(path_), FatalError);
}

TEST_F(ReplayRoundTrip, NegativeLoadFailsFast)
{
    writeRaw("time_s,load\n0,0.5\n1,-0.25\n");
    EXPECT_THROW(ReplayTrace::fromCsv(path_), FatalError);
}

TEST_F(ReplayRoundTrip, RaggedRowFailsFast)
{
    writeRaw("time_s,load\n0,0.5\n1\n");
    EXPECT_THROW(ReplayTrace::fromCsv(path_), FatalError);
}

TEST_F(ReplayRoundTrip, ExtraColumnsAreTolerated)
{
    // Real telemetry dumps carry more columns; replay only needs
    // time_s and load, wherever they are.
    writeRaw("power_w,time_s,rps,load\n3.1,0,900,0.5\n2.9,1,800,0.6\n");
    const auto trace = ReplayTrace::fromCsv(path_);
    EXPECT_DOUBLE_EQ(trace->at(0.0), 0.5);
    EXPECT_DOUBLE_EQ(trace->at(1.0), 0.6);
    EXPECT_DOUBLE_EQ(trace->at(0.5), 0.55);
}

TEST_F(ReplayRoundTrip, WriteTraceCsvValidatesArguments)
{
    const ConstantTrace trace(0.5);
    EXPECT_THROW(writeTraceCsv(path_, trace, 0.0, 10.0), FatalError);
    EXPECT_THROW(writeTraceCsv(path_, trace, 1.0, 0.0), FatalError);
    EXPECT_THROW(writeTraceCsv("/nonexistent-dir/x.csv", trace, 1.0,
                               10.0),
                 FatalError);
}

} // namespace
} // namespace hipster
