/**
 * @file
 * Regression tests for the trace-edge hardening sweep: clip bands
 * with inverted or non-finite bounds must fail fast in the registry
 * grammar and the constructors, jitter/noise caps must be finite and
 * non-negative (a negative cap used to reach std::clamp with
 * lo > hi — undefined behaviour — and could hand negative loads to
 * the simulator), and jittered loads must always stay inside
 * [0, cap] no matter how hard the noise pulls.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "common/logging.hh"
#include "loadgen/load_trace.hh"
#include "loadgen/trace_families.hh"
#include "loadgen/trace_registry.hh"

namespace hipster
{
namespace
{

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::shared_ptr<const LoadTrace>
half()
{
    return std::make_shared<ConstantTrace>(0.5);
}

TEST(TraceHardeningClip, InvertedBandFailsFastInRegistry)
{
    // lo > hi has no sensible clamp semantics; the registry must
    // reject the spec during validation, before any run starts.
    EXPECT_THROW(validateTraceSpec("diurnal|clip:0.8,0.1"), FatalError);
    EXPECT_THROW(makeTrace("diurnal|clip:0.8,0.1", 240.0, 1),
                 FatalError);
    EXPECT_FALSE(isTraceSpec("diurnal|clip:0.8,0.1"));
    // The ordered band still builds.
    EXPECT_NO_THROW(validateTraceSpec("diurnal|clip:0.1,0.8"));
}

TEST(TraceHardeningClip, ConstructorRejectsBadBounds)
{
    EXPECT_THROW(ClipTrace(half(), 0.8, 0.1), FatalError);
    EXPECT_THROW(ClipTrace(half(), -0.1, 0.5), FatalError);
    EXPECT_THROW(ClipTrace(half(), kNan, 0.5), FatalError);
    EXPECT_THROW(ClipTrace(half(), 0.1, kNan), FatalError);
    EXPECT_THROW(ClipTrace(half(), 0.1, kInf), FatalError);
    EXPECT_NO_THROW(ClipTrace(half(), 0.1, 0.8));
}

TEST(TraceHardeningJitter, NegativeCapFailsFast)
{
    // Direct construction...
    EXPECT_THROW(JitterTrace(half(), 0.05, 1.0, 7, -0.5), FatalError);
    EXPECT_THROW(JitterTrace(half(), 0.05, 1.0, 7, kNan), FatalError);
    EXPECT_THROW(NoisyTrace(half(), 0.05, 1.0, 7, -0.5), FatalError);
    EXPECT_THROW(NoisyTrace(half(), 0.05, 1.0, 7, kNan), FatalError);
    // ...and through the registry grammar (third arg is the cap).
    EXPECT_THROW(validateTraceSpec("diurnal|jitter:0.05,1,-0.5"),
                 FatalError);
    EXPECT_THROW(validateTraceSpec("diurnal|noise:0.05,1,-0.5"),
                 FatalError);
    EXPECT_NO_THROW(validateTraceSpec("diurnal|jitter:0.05,1,1.2"));
    EXPECT_NO_THROW(validateTraceSpec("diurnal|noise:0.05,1,1.2"));
}

TEST(TraceHardeningJitter, JitteredLoadStaysInsideTheClamp)
{
    // Huge sigma relative to the level: raw jitter would swing far
    // negative and far above the cap; every sample must come back
    // clamped into [0, cap].
    const double cap = 1.2;
    const JitterTrace jittered(half(), 5.0, 1.0, 42, cap);
    const NoisyTrace noisy(half(), 5.0, 1.0, 42, cap);
    bool sawLow = false;
    bool sawHigh = false;
    for (int i = 0; i < 2000; ++i) {
        const Seconds t = 0.25 * i;
        for (const double v : {jittered.at(t), noisy.at(t)}) {
            ASSERT_TRUE(std::isfinite(v)) << "t=" << t;
            ASSERT_GE(v, 0.0) << "t=" << t;
            ASSERT_LE(v, cap) << "t=" << t;
        }
        sawLow = sawLow || jittered.at(t) == 0.0;
        sawHigh = sawHigh || jittered.at(t) == cap;
    }
    // With sigma=5 both rails must actually be hit — otherwise the
    // test is not exercising the clamp at all.
    EXPECT_TRUE(sawLow);
    EXPECT_TRUE(sawHigh);
}

TEST(TraceHardeningJitter, ClipAboveJitterKeepsTheTighterBand)
{
    // The composed pipeline from the issue: jitter under a clip must
    // never leak a value outside the clip band.
    const auto trace =
        makeTrace("diurnal|jitter:0.4,1,1.2|clip:0.1,0.8", 240.0, 3);
    for (int i = 0; i < 960; ++i) {
        const double v = trace->at(0.25 * i);
        ASSERT_GE(v, 0.1);
        ASSERT_LE(v, 0.8);
    }
}

TEST(TraceHardeningJitter, ZeroCapIsAllowedAndPinsTheTrace)
{
    // cap=0 is a degenerate but valid clamp: everything pins to 0.
    const JitterTrace pinned(half(), 1.0, 1.0, 9, 0.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(pinned.at(1.0 * i), 0.0);
}

} // namespace
} // namespace hipster
