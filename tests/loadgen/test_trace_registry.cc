/**
 * @file
 * Tests for the trace registry and its spec grammar: family lookup
 * and argument defaults, transform pipelines, '+' splicing with
 * '@' lengths, spec-aware CLI list splitting, fail-fast validation,
 * and the unknown-name error that enumerates every registered spec.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"
#include "loadgen/trace_registry.hh"

namespace hipster
{
namespace
{

constexpr Seconds kDuration = 400.0;

TEST(TraceRegistryCatalog, BuiltinsAreRegistered)
{
    const TraceRegistry &registry = TraceRegistry::instance();
    for (const char *name : {"constant", "ramp", "diurnal", "spike",
                             "sine", "mmpp", "flashcrowd", "replay"})
        EXPECT_TRUE(registry.hasFamily(name)) << name;
    for (const char *name :
         {"scale", "offset", "clip", "noise", "jitter", "repeat"})
        EXPECT_TRUE(registry.hasTransform(name)) << name;
    EXPECT_FALSE(registry.hasFamily("sawtooth"));
    EXPECT_FALSE(registry.hasTransform("sawtooth"));
    EXPECT_GE(registry.families().size(), 8u);
    EXPECT_GE(registry.transforms().size(), 6u);
}

TEST(TraceRegistryCatalog, CatalogTextListsEverything)
{
    const std::string catalog =
        TraceRegistry::instance().catalogText();
    for (const TraceFamilyInfo &family :
         TraceRegistry::instance().families())
        EXPECT_NE(catalog.find(family.signature), std::string::npos)
            << family.name;
    for (const TraceTransformInfo &transform :
         TraceRegistry::instance().transforms())
        EXPECT_NE(catalog.find(transform.signature), std::string::npos)
            << transform.name;
}

TEST(TraceRegistryErrors, UnknownFamilyEnumeratesRegisteredSpecs)
{
    // The whole point of the registry error: a typo tells the user
    // what IS available instead of sending them to the source.
    try {
        makeTrace("sawtooth", kDuration, 1);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown trace family 'sawtooth'"),
                  std::string::npos)
            << msg;
        // Every registered family signature is enumerated.
        for (const TraceFamilyInfo &family :
             TraceRegistry::instance().families())
            EXPECT_NE(msg.find(family.signature), std::string::npos)
                << family.name << " missing from: " << msg;
        EXPECT_NE(msg.find("mmpp"), std::string::npos);
        EXPECT_NE(msg.find("flashcrowd"), std::string::npos);
        EXPECT_NE(msg.find("transforms"), std::string::npos);
    }
}

TEST(TraceRegistryErrors, UnknownTransformAndMisplacedFamily)
{
    EXPECT_THROW(makeTrace("diurnal|sawtooth:1", kDuration, 1),
                 FatalError);
    // A family used as a transform gets a targeted hint.
    try {
        makeTrace("diurnal|ramp", kDuration, 1);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("can only start"),
                  std::string::npos);
    }
}

TEST(TraceRegistryErrors, ArgumentCountAndTypeAreChecked)
{
    EXPECT_THROW(makeTrace("constant", kDuration, 1), FatalError);
    EXPECT_THROW(makeTrace("constant:0.5,0.6", kDuration, 1),
                 FatalError);
    EXPECT_THROW(makeTrace("constant:abc", kDuration, 1), FatalError);
    // Non-finite arguments would poison at()'s finite invariant.
    EXPECT_THROW(makeTrace("constant:nan", kDuration, 1), FatalError);
    EXPECT_THROW(makeTrace("sine:0.5,inf,100", kDuration, 1),
                 FatalError);
    EXPECT_THROW(makeTrace("constant:0.5@nan+ramp", kDuration, 1),
                 FatalError);
    EXPECT_THROW(makeTrace("mmpp:0.2,0.9,45,9,9", kDuration, 1),
                 FatalError);
    EXPECT_THROW(makeTrace("diurnal|clip:0.5", kDuration, 1),
                 FatalError);
    EXPECT_THROW(makeTrace("diurnal|scale:x", kDuration, 1),
                 FatalError);
    EXPECT_THROW(makeTrace("", kDuration, 1), FatalError);
    EXPECT_THROW(makeTrace("|scale:2", kDuration, 1), FatalError);
}

TEST(TraceRegistryErrors, ErrorsNameTheRejectingStage)
{
    // A composed pipeline carries several stages; the error must say
    // whether the family or a transform rejected the argument, and
    // which one.
    try {
        makeTrace("mmpp:0.2,x,45|scale:0.8", kDuration, 1);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("family 'mmpp'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("is not a number"), std::string::npos)
            << msg;
    }
    try {
        makeTrace("diurnal|scale:x", kDuration, 1);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("transform 'scale'"), std::string::npos)
            << msg;
    }
    // Arity errors name the stage too.
    try {
        makeTrace("diurnal|clip:0.5", kDuration, 1);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("transform 'clip'"),
                  std::string::npos)
            << e.what();
    }
    try {
        makeTrace("constant:0.5,0.6", kDuration, 1);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("family 'constant'"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceRegistrySpecs, DefaultsMatchTheLegacyFactories)
{
    // "ramp" must stay the Figure 8 stimulus.
    const auto ramp = makeTrace("ramp", kDuration, 1);
    EXPECT_DOUBLE_EQ(ramp->at(0.0), 0.50);
    EXPECT_NEAR(ramp->at(92.5), 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(ramp->at(300.0), 1.00);
    // "constant:<v>" is exact.
    EXPECT_DOUBLE_EQ(makeTrace("constant:0.42", kDuration, 1)->at(9.0),
                     0.42);
    // "spike" adds load at 70% of the duration.
    const auto spike = makeTrace("spike", kDuration, 1);
    EXPECT_GT(spike->at(0.7 * kDuration + 1.0),
              spike->at(0.5 * kDuration));
}

TEST(TraceRegistrySpecs, EmptyArgSlotsKeepDefaults)
{
    // "ramp:,,0,100" overrides only t0/length; from/to keep 0.5/1.0.
    const auto ramp = makeTrace("ramp:,,0,100", kDuration, 1);
    EXPECT_DOUBLE_EQ(ramp->at(0.0), 0.50);
    EXPECT_NEAR(ramp->at(50.0), 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(ramp->at(100.0), 1.00);
}

TEST(TraceRegistrySpecs, PipelineAppliesTransformsInOrder)
{
    const auto scaled =
        makeTrace("constant:0.4|scale:2|clip:0,0.7", kDuration, 1);
    EXPECT_DOUBLE_EQ(scaled->at(0.0), 0.7); // 0.4*2 = 0.8, clipped
    const auto reordered =
        makeTrace("constant:0.4|clip:0,0.7|scale:2", kDuration, 1);
    EXPECT_DOUBLE_EQ(reordered->at(0.0), 0.8); // clip first, then *2
}

TEST(TraceRegistrySpecs, SpliceSegmentsRunOnLocalClocks)
{
    const auto spliced = makeTrace(
        "constant:0.3@100+ramp:0.3,0.9,0,50@100+constant:0.9",
        kDuration, 1);
    EXPECT_DOUBLE_EQ(spliced->at(50.0), 0.3);
    EXPECT_NEAR(spliced->at(125.0), 0.6, 1e-9); // 25 s into the ramp
    EXPECT_DOUBLE_EQ(spliced->at(250.0), 0.9);
}

TEST(TraceRegistrySpecs, SpliceValidation)
{
    // A middle segment without a length is rejected.
    EXPECT_THROW(makeTrace("constant:0.3+ramp@100+constant:0.9",
                           kDuration, 1),
                 FatalError);
    // Explicit lengths consuming the whole run leave no room for an
    // open-ended tail.
    EXPECT_THROW(
        makeTrace("constant:0.3@400+constant:0.9", kDuration, 1),
        FatalError);
    // A segment the run never reaches is rejected even with an
    // explicit length — the results would be mislabeled otherwise.
    EXPECT_THROW(makeTrace("constant:0.3@120+ramp@100", 60.0, 1),
                 FatalError);
    // A lone segment's '@len' may exceed the run: it deliberately
    // views the prefix of a longer trace.
    EXPECT_NO_THROW(makeTrace("diurnal@1440", 60.0, 1));
    // Zero/negative lengths are rejected.
    EXPECT_THROW(makeTrace("constant:0.3@-5+ramp", kDuration, 1),
                 FatalError);
}

TEST(TraceRegistrySpecs, StackedNoiseStagesAreDecorrelated)
{
    // Two noise stages must not reuse the same stream: if they did,
    // "noise:0.1|noise:0.1" would square the same draws instead of
    // mixing independent ones, and the two specs below would agree
    // everywhere.
    const auto once =
        makeTrace("constant:0.5|noise:0.1", kDuration, 7);
    const auto twice =
        makeTrace("constant:0.5|noise:0.0|noise:0.1", kDuration, 7);
    std::size_t differ = 0;
    for (Seconds t = 0.0; t < 200.0; t += 1.0)
        differ += once->at(t) != twice->at(t) ? 1 : 0;
    EXPECT_GT(differ, 150u);
}

TEST(TraceRegistryValidation, IsTraceSpecAndValidate)
{
    EXPECT_TRUE(isTraceSpec("diurnal"));
    EXPECT_TRUE(isTraceSpec("mmpp:0.2,0.9,45"));
    EXPECT_TRUE(isTraceSpec("flashcrowd|repeat:100"));
    EXPECT_FALSE(isTraceSpec("sawtooth"));
    EXPECT_FALSE(isTraceSpec("constant:nope"));
    EXPECT_FALSE(isTraceSpec(""));
    // Replay validation is I/O-checking by design: a missing file
    // fails before a campaign starts.
    EXPECT_FALSE(isTraceSpec("replay:/nonexistent/trace.csv"));
    EXPECT_THROW(validateTraceSpec("replay:/nonexistent/trace.csv"),
                 FatalError);
}

TEST(TraceRegistryValidation, RegistrationRejectsDuplicatesAndNulls)
{
    TraceRegistry &registry = TraceRegistry::instance();
    EXPECT_THROW(registry.registerFamily(
                     {"constant", "constant:<level>", "dup", "", false,
                      1, 1, false},
                     nullptr),
                 FatalError);
    EXPECT_THROW(
        registry.registerTransform(
            {"scale", "scale:<factor>", "dup", false, 1, 1}, nullptr),
        FatalError);
}

TEST(TraceRegistrySpecs, ReplayPathsSwallowSpliceSeparators)
{
    // A file called "day+ramp.csv" must parse as one replay spec —
    // '+' only splices after an explicit '@<seconds>' length ends
    // the raw path.
    const std::string dir = ::testing::TempDir();
    const std::string plus_path = dir + "hipster_day+ramp.csv";
    {
        std::ofstream out(plus_path);
        out << "time_s,load\n0,0.4\n10,0.4\n";
    }
    const auto whole =
        makeTrace("replay:" + plus_path, kDuration, 1);
    EXPECT_DOUBLE_EQ(whole->at(5.0), 0.4);
    // With an explicit length the same path still splices normally.
    const auto spliced = makeTrace(
        "replay:" + plus_path + "@50+constant:0.9", kDuration, 1);
    EXPECT_DOUBLE_EQ(spliced->at(5.0), 0.4);
    EXPECT_DOUBLE_EQ(spliced->at(60.0), 0.9);
    std::remove(plus_path.c_str());
}

TEST(TraceListSplitting, ReplayPathsSwallowCommas)
{
    // File names may contain commas; only ';' ends a replay spec in
    // a CLI list.
    const auto specs =
        splitTraceList("replay:a,diurnal.csv;constant:0.5");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0], "replay:a,diurnal.csv");
    EXPECT_EQ(specs[1], "constant:0.5");
}

TEST(TraceListSplitting, CommaRuleFollowsTheActiveSpliceSegment)
{
    // Once an '@<seconds>' length ends the replay path, later
    // segments obey the normal comma rule again.
    const auto specs =
        splitTraceList("replay:a.csv@10+diurnal,ramp");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0], "replay:a.csv@10+diurnal");
    EXPECT_EQ(specs[1], "ramp");
    // Without the length the whole thing is still one raw path.
    const auto raw = splitTraceList("replay:a+b,c.csv");
    ASSERT_EQ(raw.size(), 1u);
    EXPECT_EQ(raw[0], "replay:a+b,c.csv");
}

TEST(TraceListSplitting, KeepsInSpecCommasIntact)
{
    // The classic footgun: mmpp's numeric arguments contain commas.
    const auto specs =
        splitTraceList("mmpp:0.2,0.9,45,flashcrowd,diurnal");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0], "mmpp:0.2,0.9,45");
    EXPECT_EQ(specs[1], "flashcrowd");
    EXPECT_EQ(specs[2], "diurnal");
}

TEST(TraceListSplitting, SemicolonAlwaysSeparates)
{
    const auto specs =
        splitTraceList("sine:0.5,0.3,240|noise:0.05;constant:0.4");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0], "sine:0.5,0.3,240|noise:0.05");
    EXPECT_EQ(specs[1], "constant:0.4");
}

TEST(TraceListSplitting, SingleSpecAndLegacyLists)
{
    const auto one = splitTraceList("diurnal");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], "diurnal");
    // The PR-2 era list syntax still works.
    const auto legacy = splitTraceList("diurnal,ramp,constant:0.5");
    ASSERT_EQ(legacy.size(), 3u);
    EXPECT_EQ(legacy[0], "diurnal");
    EXPECT_EQ(legacy[1], "ramp");
    EXPECT_EQ(legacy[2], "constant:0.5");
}

TEST(TraceRegistryDiurnal, MatchesTheScenarioHelperBitForBit)
{
    // The registry's "diurnal" and the scenario helper must build
    // identical traces from the same seed — the golden scenarios
    // depend on it.
    const auto via_registry = makeTrace("diurnal", 600.0, 77);
    const auto lowhigh = makeTrace("diurnal:0.05,0.95", 600.0, 77);
    for (Seconds t = 0.0; t < 600.0; t += 1.0) {
        ASSERT_EQ(via_registry->at(t), lowhigh->at(t));
    }
}

} // namespace
} // namespace hipster
