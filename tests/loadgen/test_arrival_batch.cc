/**
 * @file
 * drawPoissonArrivals must be a drop-in for the handler-chained
 * formulation: identical RNG consumption, identical timestamps, and
 * reusable output capacity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "loadgen/arrival_batch.hh"

namespace hipster
{
namespace
{

/** The pre-batching formulation, kept here as the reference. */
std::vector<Seconds>
chainedReference(Rng &rng, Seconds t0, Seconds t1, Rate rate)
{
    std::vector<Seconds> times;
    if (rate <= 0.0)
        return times;
    Seconds t = t0 + rng.exponential(rate);
    while (t < t1) {
        times.push_back(t);
        t += rng.exponential(rate);
    }
    return times;
}

TEST(ArrivalBatch, MatchesChainedFormulationBitwise)
{
    for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL, 99991ULL}) {
        Rng a(seed);
        Rng b(seed);
        std::vector<Seconds> batch;
        drawPoissonArrivals(a, 10.0, 25.0, 40.0, batch);
        const std::vector<Seconds> ref =
            chainedReference(b, 10.0, 25.0, 40.0);
        ASSERT_EQ(batch, ref);
        // Both must have consumed the same number of draws: the next
        // value from each stream still agrees.
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(ArrivalBatch, ZeroOrNegativeRateYieldsNothing)
{
    Rng rng(5);
    std::vector<Seconds> batch{1.0, 2.0};
    drawPoissonArrivals(rng, 0.0, 10.0, 0.0, batch);
    EXPECT_TRUE(batch.empty());
    drawPoissonArrivals(rng, 0.0, 10.0, -3.0, batch);
    EXPECT_TRUE(batch.empty());
    // No draws consumed at all.
    EXPECT_EQ(rng.next(), Rng(5).next());
}

TEST(ArrivalBatch, TimesLieInIntervalAndAscend)
{
    Rng rng(42);
    std::vector<Seconds> batch;
    drawPoissonArrivals(rng, 100.0, 160.0, 25.0, batch);
    ASSERT_FALSE(batch.empty());
    Seconds prev = 100.0;
    for (const Seconds t : batch) {
        EXPECT_GT(t, prev);
        EXPECT_LT(t, 160.0);
        prev = t;
    }
    // ~25/s over 60 s: expect in the right ballpark.
    EXPECT_GT(batch.size(), 1000u);
    EXPECT_LT(batch.size(), 2000u);
}

TEST(ArrivalBatch, ReusesCapacityAcrossCalls)
{
    Rng rng(9);
    std::vector<Seconds> batch;
    drawPoissonArrivals(rng, 0.0, 50.0, 100.0, batch);
    const std::size_t cap = batch.capacity();
    ASSERT_GT(cap, 0u);
    drawPoissonArrivals(rng, 0.0, 1.0, 1.0, batch);
    EXPECT_EQ(batch.capacity(), cap);
}

} // namespace
} // namespace hipster
