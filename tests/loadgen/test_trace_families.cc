/**
 * @file
 * Unit tests for the extended trace families (MMPP, flash crowd,
 * sine, replay) and the transform combinators (scale, offset, clip,
 * jitter, repeat, splice).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "loadgen/trace_families.hh"

namespace hipster
{
namespace
{

TEST(MmppTrace, AlternatesBetweenTheTwoLevels)
{
    MmppTrace trace(0.2, 0.9, 30.0, /*seed=*/7, /*horizon=*/600.0);
    bool saw_lo = false, saw_hi = false;
    for (Seconds t = 0.0; t < 600.0; t += 1.0) {
        const Fraction load = trace.at(t);
        ASSERT_TRUE(load == 0.2 || load == 0.9) << "t=" << t;
        saw_lo = saw_lo || load == 0.2;
        saw_hi = saw_hi || load == 0.9;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    // With mean sojourn 30 s over 600 s, expect a handful of
    // precomputed state segments — neither one giant sojourn nor
    // thousands of tiny ones.
    EXPECT_GE(trace.segments(), 3u);
    EXPECT_LE(trace.segments(), 200u);
}

TEST(MmppTrace, DeterministicPerSeedAndWrapsPeriodically)
{
    MmppTrace a(0.1, 0.8, 20.0, 42, 300.0);
    MmppTrace b(0.1, 0.8, 20.0, 42, 300.0);
    MmppTrace c(0.1, 0.8, 20.0, 43, 300.0);
    int differ = 0;
    for (Seconds t = 0.0; t < 300.0; t += 1.0) {
        EXPECT_EQ(a.at(t), b.at(t));
        EXPECT_EQ(a.at(t), a.at(t + 300.0)); // wraps at the horizon
        differ += a.at(t) != c.at(t) ? 1 : 0;
    }
    EXPECT_GT(differ, 0);
}

TEST(MmppTrace, RejectsBadArguments)
{
    EXPECT_THROW(MmppTrace(-0.1, 0.8, 30.0, 1, 600.0), FatalError);
    EXPECT_THROW(MmppTrace(0.9, 0.1, 30.0, 1, 600.0), FatalError);
    EXPECT_THROW(MmppTrace(0.1, 0.9, 0.0, 1, 600.0), FatalError);
    EXPECT_THROW(MmppTrace(0.1, 0.9, 30.0, 1, 0.0), FatalError);
}

TEST(FlashCrowdTrace, RisesHoldsAndDecays)
{
    // base 0.2 until t0=100, to 0.9 over 20 s, hold 50 s, decay.
    FlashCrowdTrace trace(0.2, 0.9, 100.0, 20.0, 50.0);
    EXPECT_DOUBLE_EQ(trace.at(0.0), 0.2);
    EXPECT_DOUBLE_EQ(trace.at(100.0), 0.2);
    EXPECT_NEAR(trace.at(110.0), 0.55, 1e-9); // mid-rise
    EXPECT_DOUBLE_EQ(trace.at(125.0), 0.9);   // plateau
    EXPECT_DOUBLE_EQ(trace.at(170.0), 0.9);   // plateau end
    // Aftermath decays monotonically back towards the base.
    EXPECT_GT(trace.at(180.0), trace.at(220.0));
    EXPECT_GT(trace.at(220.0), 0.2);
    EXPECT_NEAR(trace.at(1000.0), 0.2, 1e-9);
    // Duration covers the surge and most of the aftermath.
    EXPECT_GT(trace.duration(), 170.0);
}

TEST(FlashCrowdTrace, RejectsBadArguments)
{
    EXPECT_THROW(FlashCrowdTrace(-0.1, 0.9, 0.0, 10.0, 5.0),
                 FatalError);
    EXPECT_THROW(FlashCrowdTrace(0.9, 0.2, 0.0, 10.0, 5.0), FatalError);
    EXPECT_THROW(FlashCrowdTrace(0.2, 0.9, 0.0, 0.0, 5.0), FatalError);
    EXPECT_THROW(FlashCrowdTrace(0.2, 0.9, -1.0, 10.0, 5.0),
                 FatalError);
    EXPECT_THROW(FlashCrowdTrace(0.2, 0.9, 0.0, 10.0, -5.0),
                 FatalError);
}

TEST(SineTrace, OscillatesAroundTheMean)
{
    SineTrace trace(0.5, 0.3, 100.0);
    EXPECT_NEAR(trace.at(0.0), 0.5, 1e-9);
    EXPECT_NEAR(trace.at(25.0), 0.8, 1e-9);
    EXPECT_NEAR(trace.at(75.0), 0.2, 1e-9);
    EXPECT_NEAR(trace.at(100.0), trace.at(0.0), 1e-9); // periodic
    double mean = 0.0;
    for (int k = 0; k < 100; ++k)
        mean += trace.at(k);
    EXPECT_NEAR(mean / 100.0, 0.5, 1e-6);
}

TEST(SineTrace, ClampsAtZeroWhenAmpExceedsMean)
{
    SineTrace trace(0.2, 0.5, 50.0);
    for (Seconds t = 0.0; t < 50.0; t += 0.5)
        ASSERT_GE(trace.at(t), 0.0) << t;
    EXPECT_DOUBLE_EQ(trace.at(37.5), 0.0); // trough clamps
}

TEST(SineTrace, PhaseShiftsTheWave)
{
    SineTrace base(0.5, 0.3, 100.0);
    SineTrace shifted(0.5, 0.3, 100.0, M_PI);
    EXPECT_NEAR(base.at(25.0), shifted.at(75.0), 1e-9);
    EXPECT_THROW(SineTrace(-0.1, 0.3, 100.0), FatalError);
    EXPECT_THROW(SineTrace(0.5, -0.3, 100.0), FatalError);
    EXPECT_THROW(SineTrace(0.5, 0.3, 0.0), FatalError);
}

TEST(ScaleTrace, MultipliesAndValidates)
{
    auto base = std::make_shared<ConstantTrace>(0.4);
    ScaleTrace scaled(base, 1.5);
    EXPECT_DOUBLE_EQ(scaled.at(10.0), 0.6);
    EXPECT_THROW(ScaleTrace(base, -1.0), FatalError);
    EXPECT_THROW(ScaleTrace(nullptr, 1.0), FatalError);
}

TEST(OffsetTrace, AddsAndClampsAtZero)
{
    auto base = std::make_shared<ConstantTrace>(0.4);
    OffsetTrace up(base, 0.2);
    OffsetTrace down(base, -0.6);
    EXPECT_DOUBLE_EQ(up.at(0.0), 0.6);
    EXPECT_DOUBLE_EQ(down.at(0.0), 0.0); // clamped, stays >= 0
    EXPECT_THROW(OffsetTrace(nullptr, 0.1), FatalError);
}

TEST(ClipTrace, ClampsIntoRange)
{
    auto ramp = std::make_shared<RampTrace>(0.0, 1.0, 0.0, 100.0);
    ClipTrace clipped(ramp, 0.2, 0.8);
    EXPECT_DOUBLE_EQ(clipped.at(0.0), 0.2);
    EXPECT_DOUBLE_EQ(clipped.at(50.0), 0.5);
    EXPECT_DOUBLE_EQ(clipped.at(100.0), 0.8);
    EXPECT_THROW(ClipTrace(ramp, 0.8, 0.2), FatalError);
    EXPECT_THROW(ClipTrace(ramp, -0.1, 0.8), FatalError);
    EXPECT_THROW(ClipTrace(nullptr, 0.0, 1.0), FatalError);
}

TEST(JitterTrace, DeterministicAdditiveNoiseWithinBounds)
{
    auto base = std::make_shared<ConstantTrace>(0.5);
    JitterTrace a(base, 0.1, 1.0, 7);
    JitterTrace b(base, 0.1, 1.0, 7);
    JitterTrace c(base, 0.1, 1.0, 8);
    int differ = 0;
    for (Seconds t = 0.0; t < 100.0; t += 1.0) {
        EXPECT_EQ(a.at(t), b.at(t));
        ASSERT_GE(a.at(t), 0.0);
        ASSERT_LE(a.at(t), 1.2);
        differ += a.at(t) != c.at(t) ? 1 : 0;
    }
    EXPECT_GT(differ, 80);
    // Constant within one interval, like NoisyTrace.
    EXPECT_DOUBLE_EQ(a.at(3.1), a.at(3.9));
}

TEST(JitterTrace, MeanApproximatelyPreservedAndZeroSigmaTransparent)
{
    auto base = std::make_shared<ConstantTrace>(0.5);
    JitterTrace trace(base, 0.05, 1.0, 9);
    double sum = 0.0;
    const int n = 2000;
    for (int k = 0; k < n; ++k)
        sum += trace.at(k + 0.5);
    EXPECT_NEAR(sum / n, 0.5, 0.01);

    JitterTrace silent(base, 0.0, 1.0, 1);
    EXPECT_DOUBLE_EQ(silent.at(12.3), 0.5);
    EXPECT_THROW(JitterTrace(base, -0.1, 1.0, 1), FatalError);
    EXPECT_THROW(JitterTrace(base, 0.1, 0.0, 1), FatalError);
    EXPECT_THROW(JitterTrace(nullptr, 0.1, 1.0, 1), FatalError);
}

TEST(RepeatTrace, WrapsTimeModuloThePeriod)
{
    auto ramp = std::make_shared<RampTrace>(0.0, 1.0, 0.0, 100.0);
    RepeatTrace repeated(ramp, 50.0);
    EXPECT_DOUBLE_EQ(repeated.at(10.0), ramp->at(10.0));
    EXPECT_DOUBLE_EQ(repeated.at(60.0), ramp->at(10.0));
    EXPECT_DOUBLE_EQ(repeated.at(510.0), ramp->at(10.0));
    EXPECT_DOUBLE_EQ(repeated.duration(), 50.0);
    EXPECT_THROW(RepeatTrace(ramp, 0.0), FatalError);
    EXPECT_THROW(RepeatTrace(nullptr, 10.0), FatalError);
}

TEST(SpliceTrace, ConcatenatesWithLocalClocks)
{
    auto low = std::make_shared<ConstantTrace>(0.2);
    auto ramp = std::make_shared<RampTrace>(0.2, 0.8, 0.0, 50.0);
    auto high = std::make_shared<ConstantTrace>(0.8);
    SpliceTrace splice({{low, 100.0}, {ramp, 50.0}, {high, 0.0}});
    EXPECT_DOUBLE_EQ(splice.at(50.0), 0.2);
    // Segment 2's clock starts at 0: t=125 is 25 s into the ramp.
    EXPECT_NEAR(splice.at(125.0), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(splice.at(200.0), 0.8);
    EXPECT_DOUBLE_EQ(splice.at(10000.0), 0.8); // open-ended tail
}

TEST(SpliceTrace, ValidatesSegments)
{
    auto c = std::make_shared<ConstantTrace>(0.5);
    EXPECT_THROW(SpliceTrace({}), FatalError);
    EXPECT_THROW(SpliceTrace({{nullptr, 10.0}}), FatalError);
    EXPECT_THROW(SpliceTrace({{c, -1.0}}), FatalError);
    // Open-ended segment anywhere but last is rejected.
    EXPECT_THROW(SpliceTrace({{c, 0.0}, {c, 10.0}}), FatalError);
    EXPECT_NO_THROW(SpliceTrace({{c, 10.0}, {c, 0.0}}));
}

TEST(NoisyDiurnal, MatchesTheScenarioComposition)
{
    // makeNoisyDiurnal is the single source of truth behind both the
    // scenario helper and the registry's "diurnal": the composition
    // must stay a DiurnalTrace under mild multiplicative noise
    // capped at 1.05.
    const auto trace = makeNoisyDiurnal(600.0, 11);
    DiurnalTrace clean(600.0, 0.05, 0.95);
    double max_seen = 0.0;
    for (Seconds t = 0.0; t < 600.0; t += 1.0) {
        const Fraction load = trace->at(t);
        ASSERT_GE(load, 0.0);
        ASSERT_LE(load, 1.05);
        // Noise is multiplicative around the clean curve.
        EXPECT_NEAR(load, clean.at(t), clean.at(t) * 0.5 + 1e-9);
        max_seen = std::max(max_seen, load);
    }
    EXPECT_GT(max_seen, 0.75);
}

} // namespace
} // namespace hipster
