/**
 * @file
 * Tests for the load traces: constants, ramps, piecewise curves, the
 * diurnal synthesizer, spikes and noise.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "loadgen/load_trace.hh"

namespace hipster
{
namespace
{

TEST(ConstantTrace, AlwaysSameLevel)
{
    ConstantTrace trace(0.42);
    EXPECT_DOUBLE_EQ(trace.at(0.0), 0.42);
    EXPECT_DOUBLE_EQ(trace.at(1e6), 0.42);
    EXPECT_THROW(ConstantTrace(-0.1), FatalError);
}

TEST(RampTrace, LinearBetweenEndpoints)
{
    // The Figure 8 stimulus: 50% -> 100% over 175 s starting at t=5.
    RampTrace ramp(0.5, 1.0, 5.0, 175.0);
    EXPECT_DOUBLE_EQ(ramp.at(0.0), 0.5);
    EXPECT_DOUBLE_EQ(ramp.at(5.0), 0.5);
    EXPECT_NEAR(ramp.at(92.5), 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(ramp.at(180.0), 1.0);
    EXPECT_DOUBLE_EQ(ramp.at(1000.0), 1.0);
}

TEST(RampTrace, DownwardRampWorks)
{
    RampTrace ramp(0.8, 0.2, 0.0, 100.0);
    EXPECT_NEAR(ramp.at(50.0), 0.5, 1e-9);
    EXPECT_GT(ramp.at(10.0), ramp.at(90.0));
}

TEST(RampTrace, RejectsBadArguments)
{
    EXPECT_THROW(RampTrace(0.5, 1.0, 0.0, 0.0), FatalError);
    EXPECT_THROW(RampTrace(-0.5, 1.0, 0.0, 10.0), FatalError);
}

TEST(PiecewiseTrace, InterpolatesBreakpoints)
{
    PiecewiseTrace trace({{0.0, 0.1}, {10.0, 0.5}, {20.0, 0.3}});
    EXPECT_DOUBLE_EQ(trace.at(-5.0), 0.1);
    EXPECT_NEAR(trace.at(5.0), 0.3, 1e-9);
    EXPECT_DOUBLE_EQ(trace.at(10.0), 0.5);
    EXPECT_NEAR(trace.at(15.0), 0.4, 1e-9);
    EXPECT_DOUBLE_EQ(trace.at(100.0), 0.3);
    EXPECT_DOUBLE_EQ(trace.duration(), 20.0);
}

TEST(PiecewiseTrace, RejectsUnsortedOrNegative)
{
    EXPECT_THROW(PiecewiseTrace({}), FatalError);
    EXPECT_THROW(PiecewiseTrace({{5.0, 0.1}, {5.0, 0.2}}), FatalError);
    EXPECT_THROW(PiecewiseTrace({{0.0, -0.1}}), FatalError);
}

TEST(DiurnalTrace, StaysWithinRange)
{
    DiurnalTrace trace(1440.0, 0.05, 0.95);
    for (Seconds t = 0.0; t < 1440.0; t += 7.0) {
        const Fraction load = trace.at(t);
        ASSERT_GE(load, 0.05 - 1e-9) << t;
        ASSERT_LE(load, 0.95 + 1e-9) << t;
    }
}

TEST(DiurnalTrace, HasLargeSwing)
{
    // Figure 1: load varies between ~5% and ~80+% of capacity.
    DiurnalTrace trace(1440.0, 0.05, 0.95);
    Fraction lo = 1.0, hi = 0.0;
    for (Seconds t = 0.0; t < 1440.0; t += 1.0) {
        lo = std::min(lo, trace.at(t));
        hi = std::max(hi, trace.at(t));
    }
    EXPECT_LT(lo, 0.15);
    EXPECT_GT(hi, 0.80);
}

TEST(DiurnalTrace, PeriodicAcrossDays)
{
    DiurnalTrace trace(100.0, 0.1, 0.9);
    for (Seconds t = 0.0; t < 100.0; t += 13.0)
        EXPECT_NEAR(trace.at(t), trace.at(t + 100.0), 1e-9);
}

TEST(DiurnalTrace, TwoHumps)
{
    // The derivative changes sign at least 3 times over a day
    // (up-down-up-down): morning and evening peaks.
    DiurnalTrace trace(1000.0, 0.05, 0.95);
    int sign_changes = 0;
    double prev_delta = 0.0;
    for (Seconds t = 1.0; t < 1000.0; t += 1.0) {
        const double delta = trace.at(t) - trace.at(t - 1.0);
        if (delta * prev_delta < -1e-12)
            ++sign_changes;
        if (std::abs(delta) > 1e-12)
            prev_delta = delta;
    }
    EXPECT_GE(sign_changes, 3);
}

TEST(DiurnalTrace, RejectsBadRange)
{
    EXPECT_THROW(DiurnalTrace(0.0, 0.1, 0.9), FatalError);
    EXPECT_THROW(DiurnalTrace(100.0, 0.9, 0.1), FatalError);
    EXPECT_THROW(DiurnalTrace(100.0, 0.1, 0.9, 1.5), FatalError);
}

TEST(SpikeTrace, AddsDecayingSpike)
{
    auto base = std::make_shared<ConstantTrace>(0.3);
    SpikeTrace spike(base, 10.0, 5.0, 0.4);
    EXPECT_DOUBLE_EQ(spike.at(5.0), 0.3);
    EXPECT_NEAR(spike.at(10.0), 0.7, 1e-9);
    EXPECT_LT(spike.at(20.0), 0.4);
    EXPECT_GT(spike.at(20.0), 0.3);
}

TEST(SpikeTrace, RejectsNullInner)
{
    EXPECT_THROW(SpikeTrace(nullptr, 0.0, 1.0, 0.1), FatalError);
}

TEST(NoisyTrace, DeterministicPerSeed)
{
    auto base = std::make_shared<ConstantTrace>(0.5);
    NoisyTrace a(base, 0.1, 1.0, 77);
    NoisyTrace b(base, 0.1, 1.0, 77);
    for (Seconds t = 0.0; t < 50.0; t += 1.0)
        EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
}

TEST(NoisyTrace, DifferentSeedsDiffer)
{
    auto base = std::make_shared<ConstantTrace>(0.5);
    NoisyTrace a(base, 0.1, 1.0, 1);
    NoisyTrace b(base, 0.1, 1.0, 2);
    int differ = 0;
    for (Seconds t = 0.0; t < 50.0; t += 1.0)
        differ += a.at(t) != b.at(t) ? 1 : 0;
    EXPECT_GT(differ, 40);
}

TEST(NoisyTrace, ConstantWithinOneInterval)
{
    auto base = std::make_shared<ConstantTrace>(0.5);
    NoisyTrace trace(base, 0.2, 1.0, 5);
    EXPECT_DOUBLE_EQ(trace.at(3.1), trace.at(3.9));
    // Typically different across intervals.
    EXPECT_NE(trace.at(3.5), trace.at(4.5));
}

TEST(NoisyTrace, MeanApproximatelyPreserved)
{
    auto base = std::make_shared<ConstantTrace>(0.5);
    NoisyTrace trace(base, 0.05, 1.0, 9);
    double sum = 0.0;
    const int n = 2000;
    for (int k = 0; k < n; ++k)
        sum += trace.at(k + 0.5);
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(NoisyTrace, ClampsToCapAndZero)
{
    auto base = std::make_shared<ConstantTrace>(1.0);
    NoisyTrace trace(base, 3.0, 1.0, 13, /*cap=*/1.1);
    for (int k = 0; k < 500; ++k) {
        const Fraction load = trace.at(k + 0.5);
        ASSERT_GE(load, 0.0);
        ASSERT_LE(load, 1.1);
    }
}

TEST(NoisyTrace, ZeroSigmaIsTransparent)
{
    auto base = std::make_shared<ConstantTrace>(0.33);
    NoisyTrace trace(base, 0.0, 1.0, 1);
    EXPECT_DOUBLE_EQ(trace.at(12.3), 0.33);
}

} // namespace
} // namespace hipster
