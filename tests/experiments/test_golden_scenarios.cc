/**
 * @file
 * Golden regression tests for the experiments layer: a short
 * compressed-diurnal Memcached scenario (240 s day, 90 s learning
 * phase, seed 1234) run for each policy family, with the RunSummary
 * fields asserted against committed golden values.
 *
 * The goldens were produced by this exact wiring (equivalent to
 * `hipster_sim --workload memcached --policy <p> --duration 240
 * --seed 1234 --learning 90`). Runs are bitwise-deterministic on a
 * given platform, so drift here means the experiments layer changed
 * behaviour. Tolerances are explicit per metric: continuous metrics
 * get a few percent to absorb cross-platform floating-point
 * differences; discrete counters (migrations) are looser because a
 * single flipped decision shifts them in steps; structural facts
 * (interval count, drops, orderings between policies) are exact.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "experiments/experiment_spec.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

namespace hipster
{
namespace
{

constexpr Seconds kDuration = 240.0;
constexpr Seconds kLearning = 90.0;
constexpr std::uint64_t kSeed = 1234;

/** Committed golden values for one policy. */
struct Golden
{
    const char *policy;
    const char *displayName;
    double qosGuarantee; ///< tolerance ±0.03 (absolute)
    double qosTardiness; ///< tolerance ±0.60 (absolute)
    double energy;       ///< tolerance ±5% (relative)
    double meanPower;    ///< tolerance ±5% (relative)
    double migrations;   ///< tolerance ±30% (relative), exact when 0
};

/** Goldens for the 240 s compressed-diurnal Memcached scenario. */
const Golden kGoldens[] = {
    // policy        display              QoS    tard  E(J) P(W)  migr
    {"hipster",      "HipsterIn",         0.979, 1.81, 333, 1.39, 86},
    {"heuristic",    "Hipster-Heuristic", 0.988, 2.30, 372, 1.55, 90},
    {"octopus-man",  "Octopus-Man",       0.883, 4.02, 330, 1.38, 354},
    {"static-big",   "Static(all-big)",   1.000, 0.00, 417, 1.74, 0},
};

ExperimentResult
runScenario(const std::string &policyName)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            diurnalTrace(kDuration, kSeed + 100),
                            kSeed);
    HipsterParams params = tunedHipsterParams("memcached");
    params.learningPhase = kLearning;
    const auto policy =
        makePolicy(policyName, runner.platform(), params);
    return runner.run(*policy, kDuration);
}

class GoldenScenario : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenScenario, SummaryMatchesCommittedGolden)
{
    const Golden &golden = GetParam();
    const ExperimentResult result = runScenario(golden.policy);
    const RunSummary &s = result.summary;

    EXPECT_EQ(result.policyName, golden.displayName);
    EXPECT_EQ(result.workloadName, "memcached");
    EXPECT_EQ(s.intervals, static_cast<std::size_t>(kDuration));
    EXPECT_EQ(result.series.size(), static_cast<std::size_t>(kDuration));
    EXPECT_EQ(s.dropped, 0u);

    EXPECT_NEAR(s.qosGuarantee, golden.qosGuarantee, 0.03);
    EXPECT_NEAR(s.qosTardiness, golden.qosTardiness, 0.60);
    EXPECT_NEAR(s.energy, golden.energy, golden.energy * 0.05);
    EXPECT_NEAR(s.meanPower, golden.meanPower,
                golden.meanPower * 0.05);
    if (golden.migrations == 0.0) {
        EXPECT_EQ(s.migrations, 0u);
    } else {
        EXPECT_NEAR(static_cast<double>(s.migrations),
                    golden.migrations, golden.migrations * 0.30);
    }
    // Energy must equal the integral of the series.
    double total = 0.0;
    for (const auto &m : result.series)
        total += m.energy;
    EXPECT_NEAR(s.energy, total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, GoldenScenario, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        std::string name = info.param.policy;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/**
 * Committed goldens for the new trace families: the same 240 s
 * Memcached scenario driven by mmpp (bursty) and flashcrowd load,
 * under the hipster policy and the static all-big baseline
 * (equivalent to `hipster_sim --workload memcached --policy <p>
 * --trace <spec> --duration 240 --seed 1234 --learning 90`).
 * Tolerances are explicit per row: tardiness varies much more on the
 * flash crowd (the surge lands mid-exploitation), so its band is
 * proportionally wider.
 */
struct TraceGolden
{
    const char *trace;
    const char *policy;
    double qosGuarantee; ///< tolerance ±qosTol (absolute)
    double qosTol;
    double qosTardiness; ///< tolerance ±tardTol (absolute)
    double tardTol;
    double energy;     ///< tolerance ±5% (relative)
    double meanPower;  ///< tolerance ±5% (relative)
    double migrations; ///< tolerance ±30% (relative), exact when 0
};

const TraceGolden kTraceGoldens[] = {
    // trace                            policy        QoS   ±     tard  ±     E(J) P(W)  migr
    {"mmpp:0.2,0.9,45",                 "hipster",    0.938, 0.04, 5.64, 1.70, 386, 1.61, 106},
    {"mmpp:0.2,0.9,45",                 "static-big", 1.000, 0.01, 0.00, 0.10, 438, 1.82, 0},
    {"flashcrowd:0.2,0.9,120,30,60",    "hipster",    0.821, 0.05, 44.7, 10.0, 358, 1.49, 96},
    {"flashcrowd:0.2,0.9,120,30,60",    "static-big", 1.000, 0.01, 0.00, 0.10, 424, 1.77, 0},
};

ExperimentResult
runTraceScenario(const std::string &traceSpec,
                 const std::string &policyName)
{
    ExperimentRunner runner(
        Platform::junoR1(), memcachedWorkload(),
        makeTraceByName(traceSpec, kDuration, kSeed + 100), kSeed);
    HipsterParams params = tunedHipsterParams("memcached");
    params.learningPhase = kLearning;
    const auto policy =
        makePolicy(policyName, runner.platform(), params);
    return runner.run(*policy, kDuration);
}

class GoldenTraceScenario
    : public ::testing::TestWithParam<TraceGolden>
{
};

TEST_P(GoldenTraceScenario, SummaryMatchesCommittedGolden)
{
    const TraceGolden &golden = GetParam();
    const ExperimentResult result =
        runTraceScenario(golden.trace, golden.policy);
    const RunSummary &s = result.summary;

    EXPECT_EQ(result.workloadName, "memcached");
    EXPECT_EQ(s.intervals, static_cast<std::size_t>(kDuration));
    EXPECT_EQ(s.dropped, 0u);

    EXPECT_NEAR(s.qosGuarantee, golden.qosGuarantee, golden.qosTol);
    EXPECT_NEAR(s.qosTardiness, golden.qosTardiness, golden.tardTol);
    EXPECT_NEAR(s.energy, golden.energy, golden.energy * 0.05);
    EXPECT_NEAR(s.meanPower, golden.meanPower,
                golden.meanPower * 0.05);
    if (golden.migrations == 0.0) {
        EXPECT_EQ(s.migrations, 0u);
    } else {
        EXPECT_NEAR(static_cast<double>(s.migrations),
                    golden.migrations, golden.migrations * 0.30);
    }
    // Energy must equal the integral of the series.
    double total = 0.0;
    for (const auto &m : result.series)
        total += m.energy;
    EXPECT_NEAR(s.energy, total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    NewFamilies, GoldenTraceScenario,
    ::testing::ValuesIn(kTraceGoldens),
    [](const ::testing::TestParamInfo<TraceGolden> &info) {
        std::string name = info.param.trace;
        name = name.substr(0, name.find(':'));
        name += "_";
        name += info.param.policy;
        for (auto &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(GoldenTraceScenarioCross, NewFamilyOrderingsHold)
{
    // Structural facts that must survive re-calibration: on both new
    // stimuli the all-big baseline never migrates, meets QoS
    // perfectly, and burns more energy than hipster; the flash crowd
    // is the harder stimulus for hipster's QoS than steady
    // burstiness.
    const auto mmppH = runTraceScenario("mmpp:0.2,0.9,45", "hipster");
    const auto mmppB =
        runTraceScenario("mmpp:0.2,0.9,45", "static-big");
    const auto crowdH =
        runTraceScenario("flashcrowd:0.2,0.9,120,30,60", "hipster");
    const auto crowdB =
        runTraceScenario("flashcrowd:0.2,0.9,120,30,60", "static-big");

    EXPECT_EQ(mmppB.migrations, 0u);
    EXPECT_EQ(crowdB.migrations, 0u);
    EXPECT_DOUBLE_EQ(mmppB.summary.qosGuarantee, 1.0);
    EXPECT_DOUBLE_EQ(crowdB.summary.qosGuarantee, 1.0);
    EXPECT_GT(mmppB.summary.energy, mmppH.summary.energy);
    EXPECT_GT(crowdB.summary.energy, crowdH.summary.energy);
    EXPECT_GT(mmppH.migrations, 0u);
    EXPECT_GT(crowdH.migrations, 0u);
}

/**
 * The golden compressed-diurnal scenario pinned to an explicit
 * parameterized registry spec: "hipster-in:bucket=8,learn=90" with
 * *untuned* base parameters must reproduce the committed "hipster"
 * golden bit for bit — the spec overrides, not the helper plumbing,
 * carry the deployment tuning.
 */
TEST(GoldenParameterizedSpec, ExplicitSpecMatchesTheTunedGolden)
{
    const auto viaSpec = [] {
        ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                                diurnalTrace(kDuration, kSeed + 100),
                                kSeed);
        // Plain defaults: bucket 5, learn 500. The spec must win.
        const auto policy =
            makePolicy("hipster-in:bucket=8,learn=90",
                       runner.platform(), HipsterParams{});
        return runner.run(*policy, kDuration);
    }();
    const ExperimentResult viaTuning = runScenario("hipster");

    EXPECT_EQ(viaSpec.policyName, "HipsterIn");
    EXPECT_EQ(viaSpec.summary.qosGuarantee,
              viaTuning.summary.qosGuarantee);
    EXPECT_EQ(viaSpec.summary.qosTardiness,
              viaTuning.summary.qosTardiness);
    EXPECT_EQ(viaSpec.summary.energy, viaTuning.summary.energy);
    EXPECT_EQ(viaSpec.summary.meanPower, viaTuning.summary.meanPower);
    EXPECT_EQ(viaSpec.migrations, viaTuning.migrations);
    EXPECT_EQ(viaSpec.dvfsTransitions, viaTuning.dvfsTransitions);

    // And therefore the committed golden values hold for the spec.
    const Golden &golden = kGoldens[0];
    EXPECT_NEAR(viaSpec.summary.qosGuarantee, golden.qosGuarantee,
                0.03);
    EXPECT_NEAR(viaSpec.summary.energy, golden.energy,
                golden.energy * 0.05);
}

/**
 * The golden scenario pinned to a parameterized workload x platform
 * spec: the full ExperimentSpec wiring ("memcached:qos=8ms,stall=0.5"
 * on "juno:big=4,little=8") must reproduce hand-constructed
 * overrides bit for bit — the registries, not bespoke plumbing,
 * carry every knob.
 */
TEST(GoldenParameterizedSpec, WorkloadPlatformSpecMatchesManualBitwise)
{
    const auto viaSpec = [] {
        ExperimentSpec spec;
        spec.workload = "memcached:qos=8ms,stall=0.5";
        spec.platform = "juno:big=4,little=8";
        spec.trace = "diurnal";
        spec.policy = "hipster-in:learn=90";
        spec.duration = kDuration;
        spec.seed = kSeed;
        return spec.run();
    }();

    const auto manual = [] {
        PlatformSpec board = Platform::junoR1();
        board.clusters[0].coreCount = 4;
        board.clusters[1].coreCount = 8;
        LcWorkloadDef def = memcachedWorkload();
        def.params.qosTargetMs = 8.0;
        def.traits.stallSensitivity = 0.5;
        ExperimentRunner runner(board, def,
                                diurnalTrace(kDuration, kSeed + 100),
                                kSeed);
        HipsterParams params = tunedHipsterParams("memcached");
        params.learningPhase = 90.0;
        const auto policy =
            makePolicy("hipster-in", runner.platform(), params);
        return runner.run(*policy, kDuration);
    }();

    EXPECT_EQ(viaSpec.policyName, "HipsterIn");
    EXPECT_EQ(viaSpec.workloadName, "memcached");
    EXPECT_EQ(viaSpec.summary.intervals,
              static_cast<std::size_t>(kDuration));
    EXPECT_EQ(viaSpec.summary.qosGuarantee,
              manual.summary.qosGuarantee);
    EXPECT_EQ(viaSpec.summary.qosTardiness,
              manual.summary.qosTardiness);
    EXPECT_EQ(viaSpec.summary.energy, manual.summary.energy);
    EXPECT_EQ(viaSpec.summary.meanPower, manual.summary.meanPower);
    EXPECT_EQ(viaSpec.migrations, manual.migrations);
    EXPECT_EQ(viaSpec.dvfsTransitions, manual.dvfsTransitions);
    ASSERT_EQ(viaSpec.series.size(), manual.series.size());
    for (std::size_t i = 0; i < viaSpec.series.size(); ++i) {
        ASSERT_EQ(viaSpec.series[i].energy, manual.series[i].energy);
        ASSERT_EQ(viaSpec.series[i].tailLatency,
                  manual.series[i].tailLatency);
        ASSERT_EQ(viaSpec.series[i].config, manual.series[i].config);
    }

    // Structural facts of the widened-board scenario: the doubled
    // big cluster gives static headroom the manager can exploit, so
    // the run completes with positive energy and no drops.
    EXPECT_EQ(viaSpec.summary.dropped, 0u);
    EXPECT_GT(viaSpec.summary.energy, 0.0);
}

TEST(GoldenScenarioCross, PolicyOrderingsHold)
{
    // Structural facts of the scenario that must survive any
    // re-calibration: the static all-big baseline spends the most
    // energy and never migrates; Octopus-Man migrates far more than
    // HipsterIn; HipsterIn beats Octopus-Man on QoS.
    const auto hipster = runScenario("hipster");
    const auto octopus = runScenario("octopus-man");
    const auto staticBig = runScenario("static-big");

    EXPECT_GT(staticBig.summary.energy, hipster.summary.energy);
    EXPECT_GT(staticBig.summary.energy, octopus.summary.energy);
    EXPECT_EQ(staticBig.migrations, 0u);
    EXPECT_GT(octopus.migrations, hipster.migrations * 2);
    EXPECT_GT(hipster.summary.qosGuarantee,
              octopus.summary.qosGuarantee);
}

} // namespace
} // namespace hipster
