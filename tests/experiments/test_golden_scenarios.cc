/**
 * @file
 * Golden regression tests for the experiments layer: a short
 * compressed-diurnal Memcached scenario (240 s day, 90 s learning
 * phase, seed 1234) run for each policy family, with the RunSummary
 * fields asserted against committed golden values.
 *
 * The goldens were produced by this exact wiring (equivalent to
 * `hipster_sim --workload memcached --policy <p> --duration 240
 * --seed 1234 --learning 90`). Runs are bitwise-deterministic on a
 * given platform, so drift here means the experiments layer changed
 * behaviour. Tolerances are explicit per metric: continuous metrics
 * get a few percent to absorb cross-platform floating-point
 * differences; discrete counters (migrations) are looser because a
 * single flipped decision shifts them in steps; structural facts
 * (interval count, drops, orderings between policies) are exact.
 */

#include <gtest/gtest.h>

#include "experiments/runner.hh"
#include "experiments/scenario.hh"

namespace hipster
{
namespace
{

constexpr Seconds kDuration = 240.0;
constexpr Seconds kLearning = 90.0;
constexpr std::uint64_t kSeed = 1234;

/** Committed golden values for one policy. */
struct Golden
{
    const char *policy;
    const char *displayName;
    double qosGuarantee; ///< tolerance ±0.03 (absolute)
    double qosTardiness; ///< tolerance ±0.60 (absolute)
    double energy;       ///< tolerance ±5% (relative)
    double meanPower;    ///< tolerance ±5% (relative)
    double migrations;   ///< tolerance ±30% (relative), exact when 0
};

/** Goldens for the 240 s compressed-diurnal Memcached scenario. */
const Golden kGoldens[] = {
    // policy        display              QoS    tard  E(J) P(W)  migr
    {"hipster",      "HipsterIn",         0.979, 1.81, 333, 1.39, 86},
    {"heuristic",    "Hipster-Heuristic", 0.988, 2.30, 372, 1.55, 90},
    {"octopus-man",  "Octopus-Man",       0.883, 4.02, 330, 1.38, 354},
    {"static-big",   "Static(all-big)",   1.000, 0.00, 417, 1.74, 0},
};

ExperimentResult
runScenario(const std::string &policyName)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            diurnalTrace(kDuration, kSeed + 100),
                            kSeed);
    HipsterParams params = tunedHipsterParams("memcached");
    params.learningPhase = kLearning;
    const auto policy =
        makePolicy(policyName, runner.platform(), params);
    return runner.run(*policy, kDuration);
}

class GoldenScenario : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenScenario, SummaryMatchesCommittedGolden)
{
    const Golden &golden = GetParam();
    const ExperimentResult result = runScenario(golden.policy);
    const RunSummary &s = result.summary;

    EXPECT_EQ(result.policyName, golden.displayName);
    EXPECT_EQ(result.workloadName, "memcached");
    EXPECT_EQ(s.intervals, static_cast<std::size_t>(kDuration));
    EXPECT_EQ(result.series.size(), static_cast<std::size_t>(kDuration));
    EXPECT_EQ(s.dropped, 0u);

    EXPECT_NEAR(s.qosGuarantee, golden.qosGuarantee, 0.03);
    EXPECT_NEAR(s.qosTardiness, golden.qosTardiness, 0.60);
    EXPECT_NEAR(s.energy, golden.energy, golden.energy * 0.05);
    EXPECT_NEAR(s.meanPower, golden.meanPower,
                golden.meanPower * 0.05);
    if (golden.migrations == 0.0) {
        EXPECT_EQ(s.migrations, 0u);
    } else {
        EXPECT_NEAR(static_cast<double>(s.migrations),
                    golden.migrations, golden.migrations * 0.30);
    }
    // Energy must equal the integral of the series.
    double total = 0.0;
    for (const auto &m : result.series)
        total += m.energy;
    EXPECT_NEAR(s.energy, total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, GoldenScenario, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        std::string name = info.param.policy;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(GoldenScenarioCross, PolicyOrderingsHold)
{
    // Structural facts of the scenario that must survive any
    // re-calibration: the static all-big baseline spends the most
    // energy and never migrates; Octopus-Man migrates far more than
    // HipsterIn; HipsterIn beats Octopus-Man on QoS.
    const auto hipster = runScenario("hipster");
    const auto octopus = runScenario("octopus-man");
    const auto staticBig = runScenario("static-big");

    EXPECT_GT(staticBig.summary.energy, hipster.summary.energy);
    EXPECT_GT(staticBig.summary.energy, octopus.summary.energy);
    EXPECT_EQ(staticBig.migrations, 0u);
    EXPECT_GT(octopus.migrations, hipster.migrations * 2);
    EXPECT_GT(hipster.summary.qosGuarantee,
              octopus.summary.qosGuarantee);
}

} // namespace
} // namespace hipster
