/**
 * @file
 * Tests for the sweep engine: deterministic seed derivation and job
 * expansion, bitwise-identical runs for equal seeds, jobs=1 vs
 * jobs=N aggregate identity, the Student-t confidence-interval math
 * behind AggregateSummary, and the CSV/table reporters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "experiments/sweep.hh"

namespace hipster
{
namespace
{

/** Field-by-field equality of two interval series (exact doubles). */
void
expectBitwiseEqualSeries(const MetricsSeries &a, const MetricsSeries &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("interval " + std::to_string(i));
        EXPECT_EQ(a[i].begin, b[i].begin);
        EXPECT_EQ(a[i].end, b[i].end);
        EXPECT_EQ(a[i].offeredLoad, b[i].offeredLoad);
        EXPECT_EQ(a[i].offeredRate, b[i].offeredRate);
        EXPECT_EQ(a[i].loadBucket, b[i].loadBucket);
        EXPECT_EQ(a[i].tailLatency, b[i].tailLatency);
        EXPECT_EQ(a[i].qosTarget, b[i].qosTarget);
        EXPECT_EQ(a[i].throughput, b[i].throughput);
        EXPECT_EQ(a[i].power, b[i].power);
        EXPECT_EQ(a[i].energy, b[i].energy);
        EXPECT_EQ(a[i].batchBigIps, b[i].batchBigIps);
        EXPECT_EQ(a[i].batchSmallIps, b[i].batchSmallIps);
        EXPECT_EQ(a[i].batchPresent, b[i].batchPresent);
        EXPECT_EQ(a[i].ipsValid, b[i].ipsValid);
        EXPECT_EQ(a[i].config, b[i].config);
        EXPECT_EQ(a[i].migrations, b[i].migrations);
        EXPECT_EQ(a[i].dvfsTransitions, b[i].dvfsTransitions);
        EXPECT_EQ(a[i].lcUtilization, b[i].lcUtilization);
        EXPECT_EQ(a[i].dropped, b[i].dropped);
    }
}

void
expectEqualEstimates(const Estimate &a, const Estimate &b)
{
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
    EXPECT_EQ(a.ci95, b.ci95);
}

SweepSpec
shortSpec()
{
    SweepSpec spec;
    spec.workloads = {"memcached"};
    spec.traces = {"diurnal"};
    spec.policies = {"octopus-man", "hipster-in"};
    spec.seeds = 3;
    spec.masterSeed = 17;
    spec.duration = 60.0;
    return spec;
}

TEST(SweepSeeds, DerivationIsAPureFunction)
{
    EXPECT_EQ(SweepEngine::seedForRun(1, 0),
              SweepEngine::seedForRun(1, 0));
    EXPECT_NE(SweepEngine::seedForRun(1, 0),
              SweepEngine::seedForRun(1, 1));
    EXPECT_NE(SweepEngine::seedForRun(1, 0),
              SweepEngine::seedForRun(2, 0));
}

TEST(SweepSeeds, DistinctAcrossRepetitions)
{
    std::set<std::uint64_t> seen;
    for (std::size_t s = 0; s < 4096; ++s)
        seen.insert(SweepEngine::seedForRun(99, s));
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(SweepSeeds, CellsSharePairedSeedSets)
{
    // Common random numbers: at equal seedIndex, every cell of a
    // sweep runs the same seed, so A/B policy comparisons are
    // paired rather than absorbing cross-arm seed variance.
    SweepSpec spec;
    spec.workloads = {"memcached", "websearch"};
    spec.policies = {"static-big", "octopus-man"};
    spec.seeds = 3;
    const auto jobs = SweepEngine(spec).expandJobs();
    for (const SweepJob &job : jobs)
        EXPECT_EQ(job.seed,
                  SweepEngine::seedForRun(spec.masterSeed,
                                          job.seedIndex));
}

TEST(SweepExpansion, WorkloadMajorOrderWithDerivedSeeds)
{
    SweepSpec spec;
    spec.workloads = {"memcached", "websearch"};
    spec.traces = {"diurnal"};
    spec.policies = {"static-big", "octopus-man"};
    spec.seeds = 2;
    spec.masterSeed = 5;
    const auto jobs = SweepEngine(spec).expandJobs();
    ASSERT_EQ(jobs.size(), 8u);
    // First cell: memcached/juno/diurnal/static-big, seeds 0 and 1.
    EXPECT_EQ(jobs[0].workload, "memcached");
    EXPECT_EQ(jobs[0].platform, "juno");
    EXPECT_EQ(jobs[0].policy, "static-big");
    EXPECT_EQ(jobs[0].cell, 0u);
    EXPECT_EQ(jobs[1].cell, 0u);
    EXPECT_EQ(jobs[1].seedIndex, 1u);
    EXPECT_EQ(jobs[2].policy, "octopus-man");
    EXPECT_EQ(jobs[4].workload, "websearch");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i);
        EXPECT_EQ(jobs[i].seed,
                  SweepEngine::seedForRun(5, jobs[i].seedIndex));
    }
    // Expansion is reproducible.
    const auto again = SweepEngine(spec).expandJobs();
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].seed, again[i].seed);
}

TEST(SweepDeterminism, SameSeedBitwiseIdenticalSeries)
{
    const SweepSpec spec = shortSpec();
    SweepEngine engine(spec);
    const auto jobs = engine.expandJobs();
    // Re-run the same job (a full HipsterIn closed loop) twice: the
    // interval series must match field-for-field.
    const auto a = engine.runJob(jobs[4]);
    const auto b = engine.runJob(jobs[4]);
    expectBitwiseEqualSeries(a.series, b.series);
    EXPECT_EQ(a.summary.energy, b.summary.energy);
    EXPECT_EQ(a.summary.qosGuarantee, b.summary.qosGuarantee);
    EXPECT_EQ(a.migrations, b.migrations);
}

TEST(SweepDeterminism, DifferentSeedsProduceDifferentSeries)
{
    const SweepSpec spec = shortSpec();
    SweepEngine engine(spec);
    const auto jobs = engine.expandJobs();
    ASSERT_EQ(jobs[0].cell, jobs[1].cell);
    const auto a = engine.runJob(jobs[0]);
    const auto b = engine.runJob(jobs[1]);
    // Identical runs would defeat the point of multi-seed sweeps.
    double diff = 0.0;
    for (std::size_t i = 0; i < a.series.size(); ++i)
        diff += std::abs(a.series[i].tailLatency -
                         b.series[i].tailLatency);
    EXPECT_GT(diff, 0.0);
}

TEST(SweepDeterminism, SequentialAndParallelAggregatesIdentical)
{
    const SweepSpec spec = shortSpec();
    SweepEngine engine(spec);
    const auto serial = engine.run(1);
    const auto parallel = engine.run(4);

    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        EXPECT_EQ(serial.runs[i].job.seed, parallel.runs[i].job.seed);
        EXPECT_EQ(serial.runs[i].result.summary.energy,
                  parallel.runs[i].result.summary.energy);
    }
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t c = 0; c < serial.cells.size(); ++c) {
        SCOPED_TRACE("cell " + std::to_string(c));
        expectEqualEstimates(serial.cells[c].qosGuarantee,
                             parallel.cells[c].qosGuarantee);
        expectEqualEstimates(serial.cells[c].qosTardiness,
                             parallel.cells[c].qosTardiness);
        expectEqualEstimates(serial.cells[c].energy,
                             parallel.cells[c].energy);
        expectEqualEstimates(serial.cells[c].migrations,
                             parallel.cells[c].migrations);
    }
}

TEST(SweepDeterminism, OnRunObservesJobsInExpansionOrder)
{
    const SweepSpec spec = shortSpec();
    SweepEngine engine(spec);
    std::vector<std::size_t> order;
    engine.run(4, [&](const SweepRun &run) {
        order.push_back(run.job.index);
    });
    ASSERT_EQ(order.size(), 6u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SweepAggregation, CellStatsMatchManualReduction)
{
    const SweepSpec spec = shortSpec();
    const auto results = SweepEngine(spec).run(2);
    ASSERT_EQ(results.cells.size(), 2u);
    for (const auto &cell : results.cells) {
        std::vector<double> qos;
        for (const auto &run : results.runs) {
            if (results.cells[run.job.cell].policy == cell.policy)
                qos.push_back(run.result.summary.qosGuarantee);
        }
        const Estimate manual = Estimate::of(qos);
        EXPECT_EQ(cell.qosGuarantee.mean, manual.mean);
        EXPECT_EQ(cell.qosGuarantee.ci95, manual.ci95);
        EXPECT_EQ(cell.runs, spec.seeds);
    }
}

TEST(SweepLookups, FindAndRepresentative)
{
    const auto results = SweepEngine(shortSpec()).run(2);
    const auto *cell = results.find("hipster-in", "memcached");
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->policyDisplay, "HipsterIn");
    EXPECT_EQ(results.find("hipster-in", "memcached", "diurnal"), cell);
    EXPECT_EQ(results.find("nope", "memcached"), nullptr);
    const auto *rep = results.representative("octopus-man", "memcached");
    ASSERT_NE(rep, nullptr);
    EXPECT_EQ(rep->policyName, "Octopus-Man");
    EXPECT_EQ(rep->series.size(), 60u);
    EXPECT_EQ(results.representative("octopus-man", "websearch"),
              nullptr);
}

TEST(SweepCi, EstimateMatchesHandComputedStudentT)
{
    const Estimate e = Estimate::of({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_EQ(e.n, 5u);
    EXPECT_DOUBLE_EQ(e.mean, 3.0);
    EXPECT_DOUBLE_EQ(e.stddev, std::sqrt(2.5));
    // t(0.975, df=4) = 2.776; half-width = t * s / sqrt(n).
    EXPECT_NEAR(e.ci95, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
    EXPECT_DOUBLE_EQ(e.lo(), e.mean - e.ci95);
    EXPECT_DOUBLE_EQ(e.hi(), e.mean + e.ci95);
}

TEST(SweepCi, DegenerateSampleSizes)
{
    const Estimate none = Estimate::of({});
    EXPECT_EQ(none.n, 0u);
    EXPECT_EQ(none.mean, 0.0);
    EXPECT_EQ(none.ci95, 0.0);
    const Estimate one = Estimate::of({42.0});
    EXPECT_EQ(one.n, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 42.0);
    EXPECT_EQ(one.stddev, 0.0);
    EXPECT_EQ(one.ci95, 0.0);
    const Estimate constant = Estimate::of({2.0, 2.0, 2.0});
    EXPECT_DOUBLE_EQ(constant.mean, 2.0);
    EXPECT_DOUBLE_EQ(constant.ci95, 0.0);
}

TEST(SweepCi, TCriticalValues)
{
    EXPECT_DOUBLE_EQ(tCritical95(1), 12.706);
    EXPECT_DOUBLE_EQ(tCritical95(4), 2.776);
    EXPECT_DOUBLE_EQ(tCritical95(30), 2.042);
    EXPECT_DOUBLE_EQ(tCritical95(1000), 1.960);
    EXPECT_EQ(tCritical95(0), 0.0);
    // Monotone non-increasing in df.
    for (std::size_t df = 1; df < 40; ++df)
        EXPECT_GE(tCritical95(df), tCritical95(df + 1));
}

TEST(SweepReporters, CsvAndTableShapes)
{
    const auto results = SweepEngine(shortSpec()).run(2);

    std::ostringstream runsOut;
    CsvWriter runsCsv(runsOut);
    writeRunsCsv(runsCsv, results);
    EXPECT_EQ(runsCsv.rowsWritten(), results.runs.size());
    EXPECT_NE(runsOut.str().find("qos_guarantee_pct"),
              std::string::npos);

    std::ostringstream aggOut;
    CsvWriter aggCsv(aggOut);
    writeAggregateCsv(aggCsv, results);
    EXPECT_EQ(aggCsv.rowsWritten(), results.cells.size());
    EXPECT_NE(aggOut.str().find("energy_ci95_j"), std::string::npos);

    std::ostringstream tableOut;
    printAggregateTable(tableOut, results);
    EXPECT_NE(tableOut.str().find("HipsterIn"), std::string::npos);
    EXPECT_NE(tableOut.str().find("Octopus-Man"), std::string::npos);
}

TEST(SweepSpecValidation, RejectsEmptyAndZero)
{
    SweepSpec spec = shortSpec();
    spec.policies.clear();
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.workloads.clear();
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.platforms.clear();
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.traces.clear();
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.seeds = 0;
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.durationScale = 0.0;
    EXPECT_THROW(SweepEngine{spec}, FatalError);
}

TEST(SweepDeterminism, NewTraceFamiliesStayBitwiseReproducible)
{
    // The paired-seed determinism guarantee must extend to every
    // registry family: jobs=1 and jobs=N reduce to identical
    // aggregates on mmpp, flashcrowd and composed specs too.
    SweepSpec spec;
    spec.workloads = {"memcached"};
    spec.traces = {"mmpp:0.2,0.9,30", "flashcrowd:0.2,0.9,30,10,15",
                   "sine:0.5,0.3,40|noise:0.05"};
    spec.policies = {"hipster-in:learn=15"};
    spec.seeds = 2;
    spec.masterSeed = 23;
    spec.duration = 50.0;
    SweepEngine engine(spec);
    const auto serial = engine.run(1);
    const auto parallel = engine.run(4);
    ASSERT_EQ(serial.runs.size(), 6u);
    ASSERT_EQ(serial.cells.size(), 3u);
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectBitwiseEqualSeries(serial.runs[i].result.series,
                                 parallel.runs[i].result.series);
    }
    for (std::size_t c = 0; c < serial.cells.size(); ++c) {
        SCOPED_TRACE("cell " + std::to_string(c));
        expectEqualEstimates(serial.cells[c].qosGuarantee,
                             parallel.cells[c].qosGuarantee);
        expectEqualEstimates(serial.cells[c].energy,
                             parallel.cells[c].energy);
        expectEqualEstimates(serial.cells[c].migrations,
                             parallel.cells[c].migrations);
    }
    // Different seeds genuinely vary on the stochastic families.
    const auto &mmppRuns = serial.runs;
    EXPECT_NE(mmppRuns[0].result.summary.energy,
              mmppRuns[1].result.summary.energy);
}

TEST(SweepSpecValidation, AcceptsComposedRegistrySpecs)
{
    SweepSpec spec = shortSpec();
    spec.traces = {"mmpp", "flashcrowd", "diurnal|clip:0.1,0.9",
                   "constant:0.3@20+ramp"};
    EXPECT_NO_THROW(SweepEngine{spec});
    spec.traces = {"mmpp:0.2,banana,30"};
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec.traces = {"replay:/nonexistent/file.csv"};
    EXPECT_THROW(SweepEngine{spec}, FatalError);
}

TEST(SweepSpecValidation, SpliceLengthsCheckedAgainstTheRealDuration)
{
    // A splice that doesn't fit this campaign's run length must be
    // rejected at construction — not after hours of good cells.
    SweepSpec spec = shortSpec(); // duration 60 s
    spec.traces = {"constant:0.3@120+ramp"};
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    // All-explicit splices are held to the same reachability rule.
    spec.traces = {"constant:0.3@120+ramp@100"};
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec.duration = 400.0; // now the 120 s segment fits
    EXPECT_NO_THROW(SweepEngine{spec});
    spec.traces = {"constant:0.3@120+ramp"};
    EXPECT_NO_THROW(SweepEngine{spec});
}

TEST(SweepDeterminism, MixedPolicySpecListsStayBitwiseReproducible)
{
    // The jobs=1 vs jobs=N guarantee must hold when the policy axis
    // mixes bare names and parameterized registry specs: policy
    // construction happens per job from a pure (spec, params) pair,
    // so scheduling cannot leak into the results.
    SweepSpec spec;
    spec.workloads = {"memcached"};
    spec.traces = {"diurnal"};
    spec.policies = {"static-big", "hipster-in:bucket=8",
                     "hipster-in:bucket=3,learn=15",
                     "octopus-man:up=0.85,down=0.3"};
    spec.seeds = 2;
    spec.masterSeed = 29;
    spec.duration = 50.0;
    SweepEngine engine(spec);
    const auto serial = engine.run(1);
    const auto parallel = engine.run(4);
    ASSERT_EQ(serial.runs.size(), 8u);
    ASSERT_EQ(serial.cells.size(), 4u);
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectBitwiseEqualSeries(serial.runs[i].result.series,
                                 parallel.runs[i].result.series);
    }
    for (std::size_t c = 0; c < serial.cells.size(); ++c) {
        SCOPED_TRACE("cell " + std::to_string(c));
        expectEqualEstimates(serial.cells[c].qosGuarantee,
                             parallel.cells[c].qosGuarantee);
        expectEqualEstimates(serial.cells[c].energy,
                             parallel.cells[c].energy);
        expectEqualEstimates(serial.cells[c].migrations,
                             parallel.cells[c].migrations);
    }
    // The two bucket widths are distinct cells with distinct rows.
    const auto *wide = serial.find("hipster-in:bucket=8", "memcached");
    const auto *narrow =
        serial.find("hipster-in:bucket=3,learn=15", "memcached");
    ASSERT_NE(wide, nullptr);
    ASSERT_NE(narrow, nullptr);
    EXPECT_NE(wide, narrow);
    // Parameterized cells print their spec verbatim so ablation rows
    // stay distinguishable.
    std::ostringstream tableOut;
    printAggregateTable(tableOut, serial);
    EXPECT_NE(tableOut.str().find("hipster-in:bucket=8"),
              std::string::npos);
    EXPECT_NE(tableOut.str().find("octopus-man:up=0.85,down=0.3"),
              std::string::npos);
}

TEST(SweepSpecValidation, PolicySpecsValidateAgainstTheSchema)
{
    // Registry-schema validation happens at engine construction, so
    // a bad key or value at the tail of a campaign is rejected
    // before any run starts.
    SweepSpec spec = shortSpec();
    spec.policies = {"hipster-in:bucket=8"};
    EXPECT_NO_THROW(SweepEngine{spec});
    spec.policies = {"hipster-in:bucket=999"};
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec.policies = {"hipster-in:nope=1"};
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec.policies = {"octopus-man:up=0.2"};
    EXPECT_THROW(SweepEngine{spec}, FatalError);
}

TEST(SweepSpecValidation, FailsFastOnTypoedNames)
{
    // A bad name at the tail of a campaign must be rejected at
    // construction, not after every earlier cell has run.
    SweepSpec spec = shortSpec();
    spec.policies.push_back("typo");
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.workloads.push_back("typo");
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.platforms.push_back("typo");
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.platforms.push_back("juno:big=0");
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.workloads.push_back("memcached:qos=banana");
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    spec = shortSpec();
    spec.traces.push_back("typo");
    EXPECT_THROW(SweepEngine{spec}, FatalError);
    // Synthetic labels are legal with a custom jobRunner (ablations).
    spec = shortSpec();
    spec.policies = {"my-custom-arm"};
    spec.jobRunner = [](const SweepJob &) { return ExperimentResult{}; };
    EXPECT_NO_THROW(SweepEngine{spec});
}

TEST(SweepMemory, KeepSeriesFalseDropsNonRepresentativeSeries)
{
    SweepSpec spec = shortSpec();
    spec.keepSeries = false;
    const auto results = SweepEngine(spec).run(2);
    for (const auto &run : results.runs) {
        if (run.job.seedIndex == 0) {
            EXPECT_EQ(run.result.series.size(), 60u);
        } else {
            EXPECT_TRUE(run.result.series.empty());
        }
        // Summaries survive regardless.
        EXPECT_EQ(run.result.summary.intervals, 60u);
    }
    // Aggregates are unaffected by dropping the series.
    spec.keepSeries = true;
    const auto kept = SweepEngine(spec).run(2);
    for (std::size_t c = 0; c < results.cells.size(); ++c)
        expectEqualEstimates(results.cells[c].energy,
                             kept.cells[c].energy);
}

TEST(SweepHooks, JobRunnerIsHonoured)
{
    SweepSpec spec = shortSpec();
    spec.policies = {"hipster-in"};
    spec.seeds = 1;
    spec.jobRunner = [](const SweepJob &job) {
        ExperimentResult result;
        result.policyName = "custom:" + job.policy;
        result.workloadName = job.workload;
        result.summary.qosGuarantee = 0.5;
        result.summary.intervals = 1;
        return result;
    };
    const auto results = SweepEngine(spec).run(2);
    ASSERT_EQ(results.runs.size(), 1u);
    EXPECT_EQ(results.runs[0].result.policyName, "custom:hipster-in");
    EXPECT_DOUBLE_EQ(results.cells[0].qosGuarantee.mean, 0.5);
}

TEST(SweepDeterminism, PlatformAxisStaysBitwiseReproducible)
{
    // The jobs=1 vs jobs=N guarantee must hold when the platform is
    // swept: each cell builds its own registry platform from a pure
    // spec string, so board shape cannot leak across cells or
    // threads.
    SweepSpec spec;
    spec.workloads = {"memcached"};
    spec.platforms = {"juno", "juno:big=4,little=8",
                      "hetero:big=2,little=4"};
    spec.traces = {"diurnal"};
    spec.policies = {"hipster-in:learn=15"};
    spec.seeds = 2;
    spec.masterSeed = 31;
    spec.duration = 50.0;
    SweepEngine engine(spec);
    const auto serial = engine.run(1);
    const auto parallel = engine.run(4);
    ASSERT_EQ(serial.runs.size(), 6u);
    ASSERT_EQ(serial.cells.size(), 3u);
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectBitwiseEqualSeries(serial.runs[i].result.series,
                                 parallel.runs[i].result.series);
    }
    for (std::size_t c = 0; c < serial.cells.size(); ++c) {
        SCOPED_TRACE("cell " + std::to_string(c));
        expectEqualEstimates(serial.cells[c].qosGuarantee,
                             parallel.cells[c].qosGuarantee);
        expectEqualEstimates(serial.cells[c].energy,
                             parallel.cells[c].energy);
        expectEqualEstimates(serial.cells[c].migrations,
                             parallel.cells[c].migrations);
    }
    // Each platform is its own aggregate row, addressable by spec.
    const auto *stock = serial.find("hipster-in:learn=15", "memcached",
                                    "diurnal", "juno");
    const auto *wide = serial.find("hipster-in:learn=15", "memcached",
                                   "diurnal", "juno:big=4,little=8");
    ASSERT_NE(stock, nullptr);
    ASSERT_NE(wide, nullptr);
    EXPECT_NE(stock, wide);
    EXPECT_EQ(stock->platform, "juno");
    EXPECT_EQ(wide->platform, "juno:big=4,little=8");
    // The board shape genuinely changes the physics: more cores at
    // the same load cannot leave energy bit-identical.
    EXPECT_NE(stock->energy.mean, wide->energy.mean);
    // The platform column appears in the reporters.
    std::ostringstream tableOut;
    printAggregateTable(tableOut, serial);
    EXPECT_NE(tableOut.str().find("juno:big=4,little=8"),
              std::string::npos);
    EXPECT_NE(tableOut.str().find("hetero:big=2,little=4"),
              std::string::npos);
    std::ostringstream aggOut;
    CsvWriter aggCsv(aggOut);
    writeAggregateCsv(aggCsv, serial);
    EXPECT_NE(aggOut.str().find("platform"), std::string::npos);
    EXPECT_NE(aggOut.str().find("hetero:big=2,little=4"),
              std::string::npos);
}

TEST(SweepExpansion, PlatformAxisOrderAndParameterizedWorkloads)
{
    // Platforms expand between workloads and traces; workload specs
    // are ordinary axis values too.
    SweepSpec spec;
    spec.workloads = {"memcached", "memcached:qos=8ms"};
    spec.platforms = {"juno", "juno:big=4,little=8"};
    spec.traces = {"diurnal"};
    spec.policies = {"static-big"};
    spec.seeds = 1;
    const auto jobs = SweepEngine(spec).expandJobs();
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].workload, "memcached");
    EXPECT_EQ(jobs[0].platform, "juno");
    EXPECT_EQ(jobs[1].workload, "memcached");
    EXPECT_EQ(jobs[1].platform, "juno:big=4,little=8");
    EXPECT_EQ(jobs[2].workload, "memcached:qos=8ms");
    EXPECT_EQ(jobs[2].platform, "juno");
    EXPECT_EQ(jobs[3].cell, 3u);
}

} // namespace
} // namespace hipster
