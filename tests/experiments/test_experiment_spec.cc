/**
 * @file
 * Tests for the unified ExperimentSpec: fail-fast validation across
 * all four axis grammars, duration defaulting/scaling through the
 * workload registry, and run() wiring equivalence with manual
 * construction (bitwise, same seeds).
 */

#include <gtest/gtest.h>

#include "experiments/experiment_spec.hh"
#include "experiments/scenario.hh"
#include "platform/platform_registry.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{
namespace
{

TEST(ExperimentSpec, DefaultsValidate)
{
    ExperimentSpec spec;
    EXPECT_NO_THROW(spec.validate());
    EXPECT_DOUBLE_EQ(spec.resolvedDuration(),
                     diurnalDurationFor("memcached"));
}

TEST(ExperimentSpec, ValidateCoversEveryAxis)
{
    ExperimentSpec spec;
    spec.workload = "typo";
    EXPECT_THROW(spec.validate(), FatalError);
    spec = ExperimentSpec{};
    spec.workload = "memcached:qos=banana";
    EXPECT_THROW(spec.validate(), FatalError);
    spec = ExperimentSpec{};
    spec.platform = "typo";
    EXPECT_THROW(spec.validate(), FatalError);
    spec = ExperimentSpec{};
    spec.platform = "juno:big=0";
    EXPECT_THROW(spec.validate(), FatalError);
    spec = ExperimentSpec{};
    spec.trace = "typo";
    EXPECT_THROW(spec.validate(), FatalError);
    spec = ExperimentSpec{};
    spec.policy = "hipster-in:nope=1";
    EXPECT_THROW(spec.validate(), FatalError);
    spec = ExperimentSpec{};
    spec.durationScale = 0.0;
    EXPECT_THROW(spec.validate(), FatalError);
    // Splice lengths are checked against the resolved duration.
    spec = ExperimentSpec{};
    spec.duration = 60.0;
    spec.trace = "constant:0.3@120+ramp";
    EXPECT_THROW(spec.validate(), FatalError);
    spec.duration = 400.0;
    EXPECT_NO_THROW(spec.validate());
}

TEST(ExperimentSpec, DurationDefaultsToTheWorkloadDiurnal)
{
    ExperimentSpec spec;
    spec.workload = "websearch";
    EXPECT_DOUBLE_EQ(spec.resolvedDuration(), 1080.0);
    // Parameterized specs and aliases resolve through the registry.
    spec.workload = "web-search";
    EXPECT_DOUBLE_EQ(spec.resolvedDuration(), 1080.0);
    spec.workload = "memcached:qos=8ms";
    EXPECT_DOUBLE_EQ(spec.resolvedDuration(), 1440.0);
    spec.duration = 100.0;
    spec.durationScale = 0.5;
    EXPECT_DOUBLE_EQ(spec.resolvedDuration(), 50.0);
}

TEST(ExperimentSpec, ScaleAppliesToTheDefaultLearningPhase)
{
    ExperimentSpec spec;
    EXPECT_DOUBLE_EQ(spec.baseHipsterParams().learningPhase,
                     ScenarioDefaults::learningPhase);
    EXPECT_DOUBLE_EQ(spec.baseHipsterParams().bucketPercent, 8.0);
    spec.durationScale = 0.25;
    EXPECT_DOUBLE_EQ(spec.baseHipsterParams().learningPhase,
                     ScenarioDefaults::learningPhase * 0.25);
    spec.workload = "websearch";
    EXPECT_DOUBLE_EQ(spec.baseHipsterParams().bucketPercent, 5.0);
}

TEST(ExperimentSpec, RunMatchesManualConstructionBitwise)
{
    ExperimentSpec spec;
    spec.workload = "memcached";
    spec.platform = "juno";
    spec.trace = "diurnal";
    spec.policy = "static-big";
    spec.duration = 40.0;
    spec.seed = 7;
    const ExperimentResult viaSpec = spec.run();

    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            makeTraceByName("diurnal", 40.0, 7 + 100),
                            7);
    const auto policy =
        makePolicy("static-big", runner.platform(),
                   tunedHipsterParams("memcached"));
    const ExperimentResult manual = runner.run(*policy, 40.0);

    EXPECT_EQ(viaSpec.policyName, manual.policyName);
    EXPECT_EQ(viaSpec.workloadName, manual.workloadName);
    EXPECT_EQ(viaSpec.summary.qosGuarantee,
              manual.summary.qosGuarantee);
    EXPECT_EQ(viaSpec.summary.energy, manual.summary.energy);
    EXPECT_EQ(viaSpec.summary.meanPower, manual.summary.meanPower);
    EXPECT_EQ(viaSpec.migrations, manual.migrations);
    ASSERT_EQ(viaSpec.series.size(), manual.series.size());
    for (std::size_t i = 0; i < viaSpec.series.size(); ++i)
        ASSERT_EQ(viaSpec.series[i].energy, manual.series[i].energy);
}

TEST(ExperimentSpec, RunsOnEveryRegisteredPlatformFamily)
{
    for (const PlatformInfo &info :
         PlatformRegistry::instance().platforms()) {
        SCOPED_TRACE(info.name);
        ExperimentSpec spec;
        spec.platform = info.name;
        spec.policy = "hipster-in:learn=5";
        spec.duration = 15.0;
        const ExperimentResult result = spec.run();
        EXPECT_EQ(result.series.size(), 15u);
        EXPECT_GT(result.summary.meanPower, 0.0);
    }
}

TEST(ExperimentSpec, ObserverSeesEveryInterval)
{
    ExperimentSpec spec;
    spec.policy = "static-small";
    spec.duration = 10.0;
    std::size_t seen = 0;
    spec.run([&](const IntervalMetrics &) { ++seen; });
    EXPECT_EQ(seen, 10u);
}

} // namespace
} // namespace hipster
