/**
 * @file
 * Unit tests for experiments/oracle: steady-state measurement of
 * (load, configuration) pairs, the least-power-among-feasible
 * selection rule of Section 2, and the per-load state machine of
 * Figure 2c.
 */

#include <gtest/gtest.h>

#include "experiments/oracle.hh"
#include "experiments/scenario.hh"
#include "platform/config_space.hh"

namespace hipster
{
namespace
{

OracleOptions
quickOptions()
{
    OracleOptions options;
    options.warmup = 2.0;
    options.measure = 8.0;
    options.qosFractionRequired = 0.9;
    options.interval = 1.0;
    options.seed = 3;
    return options;
}

TEST(OracleMeasure, ReportsConsistentDerivedFields)
{
    HetCmpOracle oracle(Platform::junoR1(), memcachedWorkload(),
                        quickOptions());
    const CoreConfig big{2, 0, 1.15, 0.65};
    const auto m = oracle.measure(0.4, big);
    EXPECT_EQ(m.config, big);
    EXPECT_DOUBLE_EQ(m.load, 0.4);
    EXPECT_GT(m.power, 0.0);
    EXPECT_GT(m.throughput, 0.0);
    EXPECT_NEAR(m.throughputPerWatt, m.throughput / m.power, 1e-9);
    EXPECT_GE(m.qosFraction, 0.0);
    EXPECT_LE(m.qosFraction, 1.0);
    EXPECT_EQ(m.feasible, m.qosFraction >= 0.9);
}

TEST(OracleMeasure, DeterministicForEqualSeeds)
{
    HetCmpOracle a(Platform::junoR1(), memcachedWorkload(),
                   quickOptions());
    HetCmpOracle b(Platform::junoR1(), memcachedWorkload(),
                   quickOptions());
    const CoreConfig config{1, 1, 0.90, 0.65};
    const auto ma = a.measure(0.5, config);
    const auto mb = b.measure(0.5, config);
    EXPECT_EQ(ma.tailLatency, mb.tailLatency);
    EXPECT_EQ(ma.power, mb.power);
    EXPECT_EQ(ma.throughput, mb.throughput);
    EXPECT_EQ(ma.qosFraction, mb.qosFraction);
}

TEST(OracleMeasure, BigConfigDrawsMorePowerAtEqualLoad)
{
    HetCmpOracle oracle(Platform::junoR1(), memcachedWorkload(),
                        quickOptions());
    const auto small = oracle.measure(0.2, CoreConfig{0, 2, 0.60, 0.65});
    const auto big = oracle.measure(0.2, CoreConfig{2, 0, 1.15, 0.65});
    EXPECT_GT(big.power, small.power);
}

TEST(OracleBestConfig, PicksLeastPowerAmongFeasible)
{
    HetCmpOracle oracle(Platform::junoR1(), memcachedWorkload(),
                        quickOptions());
    Platform platform(Platform::junoR1());
    const auto states = ConfigSpace::paperStates(platform);
    const auto entry = oracle.bestConfig(0.3, states);
    ASSERT_TRUE(entry.best.has_value());
    EXPECT_TRUE(entry.best->feasible);
    // No other feasible candidate may beat the winner on power.
    for (const auto &config : states) {
        const auto m = oracle.measure(0.3, config);
        if (m.feasible) {
            EXPECT_GE(m.power, entry.best->power);
        }
    }
}

TEST(OracleBestConfig, InfeasibleLoadYieldsEmptyBest)
{
    HetCmpOracle oracle(Platform::junoR1(), memcachedWorkload(),
                        quickOptions());
    // Only a 1-small-core candidate, at 80% load: hopeless.
    const auto entry =
        oracle.bestConfig(0.8, {CoreConfig{0, 1, 0.60, 0.65}});
    EXPECT_FALSE(entry.best.has_value());
    EXPECT_DOUBLE_EQ(entry.load, 0.8);
}

TEST(OracleStateMachine, OneEntryPerLoadWithRisingDemand)
{
    HetCmpOracle oracle(Platform::junoR1(), memcachedWorkload(),
                        quickOptions());
    Platform platform(Platform::junoR1());
    const auto states = ConfigSpace::paperStates(platform);
    const std::vector<Fraction> loads = {0.2, 0.5, 0.9};
    const auto machine = oracle.stateMachine(loads, states);
    ASSERT_EQ(machine.size(), loads.size());
    for (std::size_t i = 0; i < machine.size(); ++i) {
        EXPECT_DOUBLE_EQ(machine[i].load, loads[i]);
        ASSERT_TRUE(machine[i].best.has_value());
    }
    // The Figure 2c shape: serving 90% load costs more power than
    // serving 20%.
    EXPECT_GT(machine.back().best->power,
              machine.front().best->power);
}

} // namespace
} // namespace hipster
