/**
 * @file
 * Unit tests for experiments/scenario: the diurnal/ramp trace
 * factories, the name-keyed trace factory the CLIs share, tuned
 * parameter selection, the policy factory (incl. aliases) and the
 * canned diurnal runner.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/hipster_policy.hh"
#include "experiments/scenario.hh"

namespace hipster
{
namespace
{

TEST(ScenarioTraces, DiurnalStaysWithinConfiguredBand)
{
    const auto trace = diurnalTrace(1440.0, 11, 0.05, 0.95);
    double lo = 1.0, hi = 0.0;
    for (double t = 0.0; t < 1440.0; t += 10.0) {
        const double v = trace->at(t);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        EXPECT_GE(v, 0.0);
        // The noisy wrapper caps at 1.05 x the envelope.
        EXPECT_LE(v, 1.05);
    }
    // The compressed day visits both the trough and the peak region.
    EXPECT_LT(lo, 0.20);
    EXPECT_GT(hi, 0.75);
}

TEST(ScenarioTraces, DiurnalSeedControlsNoiseDeterministically)
{
    const auto a = diurnalTrace(600.0, 7);
    const auto b = diurnalTrace(600.0, 7);
    const auto c = diurnalTrace(600.0, 8);
    double diff_ab = 0.0, diff_ac = 0.0;
    for (double t = 0.0; t < 600.0; t += 1.0) {
        diff_ab += std::abs(a->at(t) - b->at(t));
        diff_ac += std::abs(a->at(t) - c->at(t));
    }
    EXPECT_EQ(diff_ab, 0.0);
    EXPECT_GT(diff_ac, 0.0);
}

TEST(ScenarioTraces, RampMatchesFigure8Stimulus)
{
    const auto ramp = rampTrace50to100();
    EXPECT_DOUBLE_EQ(ramp->at(0.0), 0.50);
    EXPECT_DOUBLE_EQ(ramp->at(300.0), 1.00);
    // Monotone non-decreasing through the ramp window.
    double prev = 0.0;
    for (double t = 0.0; t <= 200.0; t += 5.0) {
        EXPECT_GE(ramp->at(t), prev);
        prev = ramp->at(t);
    }
}

TEST(ScenarioTraces, FactoryByNameCoversEveryCliName)
{
    EXPECT_GT(makeTraceByName("diurnal", 600.0, 3)->at(100.0), 0.0);
    EXPECT_DOUBLE_EQ(makeTraceByName("ramp", 600.0, 3)->at(0.0), 0.50);
    const auto constant = makeTraceByName("constant:0.42", 600.0, 3);
    EXPECT_DOUBLE_EQ(constant->at(0.0), 0.42);
    EXPECT_DOUBLE_EQ(constant->at(599.0), 0.42);
    const auto spike = makeTraceByName("spike", 600.0, 3);
    // The spike adds load at 70% of the duration.
    EXPECT_GT(spike->at(0.7 * 600.0 + 1.0), spike->at(0.5 * 600.0));
    EXPECT_THROW(makeTraceByName("sawtooth", 600.0, 3), FatalError);
    EXPECT_TRUE(isTraceName("diurnal"));
    EXPECT_TRUE(isTraceName("constant:0.3"));
    EXPECT_FALSE(isTraceName("sawtooth"));
}

TEST(ScenarioTraces, FactoryConsultsTheRegistryForNewFamilies)
{
    // The scenario factory is the registry: every registered family
    // and composed spec builds through it.
    EXPECT_GT(makeTraceByName("mmpp:0.2,0.9,45", 600.0, 3)->at(10.0),
              0.0);
    EXPECT_GT(makeTraceByName("flashcrowd", 600.0, 3)->at(10.0), 0.0);
    EXPECT_GT(makeTraceByName("sine:0.5,0.3,120", 600.0, 3)->at(10.0),
              0.0);
    EXPECT_DOUBLE_EQ(
        makeTraceByName("constant:0.5|scale:0.5", 600.0, 3)->at(0.0),
        0.25);
    EXPECT_TRUE(isTraceName("mmpp"));
    EXPECT_TRUE(isTraceName("diurnal|clip:0.1,0.8"));
    EXPECT_FALSE(isTraceName("constant:banana"));
}

TEST(ScenarioTraces, UnknownNameErrorEnumeratesRegisteredSpecs)
{
    // Satellite of the registry refactor: the FatalError must list
    // the registered specs instead of sending the user to the
    // source.
    try {
        makeTraceByName("sawtooth", 600.0, 3);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("sawtooth"), std::string::npos);
        EXPECT_NE(msg.find("registered trace specs"),
                  std::string::npos);
        EXPECT_NE(msg.find("diurnal"), std::string::npos);
        EXPECT_NE(msg.find("mmpp"), std::string::npos);
        EXPECT_NE(msg.find("flashcrowd"), std::string::npos);
        EXPECT_NE(msg.find("replay:<csv-path>"), std::string::npos);
    }
}

TEST(ScenarioTraces, DiurnalHelperMatchesRegistrySpec)
{
    // Golden scenarios depend on the helper and the registry staying
    // bit-identical for equal seeds.
    const auto helper = diurnalTrace(600.0, 42);
    const auto registry = makeTraceByName("diurnal", 600.0, 42);
    for (double t = 0.0; t < 600.0; t += 1.0)
        ASSERT_EQ(helper->at(t), registry->at(t)) << t;
}

TEST(ScenarioDefaultsTest, DurationsAndTunedParams)
{
    EXPECT_DOUBLE_EQ(diurnalDurationFor("memcached"), 1440.0);
    EXPECT_DOUBLE_EQ(diurnalDurationFor("websearch"), 1080.0);
    EXPECT_DOUBLE_EQ(tunedHipsterParams("memcached").bucketPercent, 8.0);
    EXPECT_DOUBLE_EQ(tunedHipsterParams("websearch").bucketPercent, 5.0);
    EXPECT_DOUBLE_EQ(tunedHipsterParams("memcached").learningPhase,
                     ScenarioDefaults::learningPhase);
}

TEST(ScenarioDefaultsTest, ResolveThroughTheWorkloadRegistry)
{
    // Aliases and parameterized specs resolve like canonical names.
    EXPECT_DOUBLE_EQ(diurnalDurationFor("web-search"), 1080.0);
    EXPECT_DOUBLE_EQ(diurnalDurationFor("mc"), 1440.0);
    EXPECT_DOUBLE_EQ(diurnalDurationFor("memcached:qos=8ms"), 1440.0);
    EXPECT_GT(diurnalDurationFor("synthetic"), 0.0);
    EXPECT_DOUBLE_EQ(tunedHipsterParams("web-search").bucketPercent,
                     5.0);
    EXPECT_DOUBLE_EQ(tunedHipsterParams("mc:stall=0.5").bucketPercent,
                     8.0);

    // Unknown names no longer fall back silently: the error
    // enumerates the catalog.
    try {
        diurnalDurationFor("mysql");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown workload 'mysql'"),
                  std::string::npos);
        EXPECT_NE(msg.find("registered workloads"), std::string::npos);
        EXPECT_NE(msg.find("memcached"), std::string::npos);
    }
    EXPECT_THROW(tunedHipsterParams("mysql"), FatalError);
    EXPECT_THROW(diurnalDurationFor("memcached:qos=banana"),
                 FatalError);
}

TEST(ScenarioNames, WorkloadAndPlatformDelegates)
{
    EXPECT_TRUE(isWorkloadName("memcached"));
    EXPECT_TRUE(isWorkloadName("websearch:tail=2.0"));
    EXPECT_FALSE(isWorkloadName("mysql"));
    EXPECT_TRUE(isPlatformName("juno"));
    EXPECT_TRUE(isPlatformName("juno:big=4,little=8"));
    EXPECT_TRUE(isPlatformName("hetero"));
    EXPECT_FALSE(isPlatformName("odroid"));
}

TEST(ScenarioPolicies, FactoryBuildsEveryTableRow)
{
    Platform platform(Platform::junoR1());
    for (const auto &name : tablePolicyNames()) {
        const auto policy = makePolicy(name, platform);
        ASSERT_NE(policy, nullptr);
        EXPECT_FALSE(policy->name().empty());
    }
    EXPECT_THROW(makePolicy("nonexistent", platform), FatalError);
    for (const auto &name : tablePolicyNames())
        EXPECT_TRUE(isPolicyName(name));
    EXPECT_TRUE(isPolicyName("hipster"));
    EXPECT_FALSE(isPolicyName("nonexistent"));
}

TEST(ScenarioPolicies, FactoryConsultsThePolicyRegistry)
{
    // The scenario factory is the registry: parameterized specs and
    // aliases build through it, and fail-fast checks accept them.
    Platform platform(Platform::junoR1());
    const auto parameterized =
        makePolicy("hipster-in:bucket=8,learn=600", platform);
    ASSERT_NE(parameterized, nullptr);
    EXPECT_EQ(parameterized->name(), "HipsterIn");
    EXPECT_EQ(makePolicy("octopus", platform)->name(), "Octopus-Man");
    EXPECT_TRUE(isPolicyName("hipster-in:bucket=8"));
    EXPECT_TRUE(isPolicyName("octopus-man:up=0.85,down=0.6"));
    EXPECT_FALSE(isPolicyName("hipster-in:bucket=999"));
    EXPECT_FALSE(isPolicyName("hipster-in:nope=1"));
}

TEST(ScenarioPolicies, UnknownPolicyErrorEnumeratesCatalog)
{
    // Satellite of the registry refactor: the FatalError must list
    // the registered policies instead of sending the user to the
    // source.
    Platform platform(Platform::junoR1());
    try {
        makePolicy("nonexistent", platform);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("nonexistent"), std::string::npos);
        EXPECT_NE(msg.find("registered policies"), std::string::npos);
        EXPECT_NE(msg.find("hipster-in"), std::string::npos);
        EXPECT_NE(msg.find("octopus-man"), std::string::npos);
        EXPECT_NE(msg.find("static-big"), std::string::npos);
    }
}

TEST(ScenarioPolicies, HipsterAliasMatchesHipsterIn)
{
    Platform platform(Platform::junoR1());
    const auto alias = makePolicy("hipster", platform);
    const auto canonical = makePolicy("hipster-in", platform);
    EXPECT_EQ(alias->name(), canonical->name());
}

TEST(ScenarioPolicies, VariantPropagatesThroughFactory)
{
    Platform platform(Platform::junoR1());
    HipsterParams params;
    params.variant = PolicyVariant::Collocated;
    // hipster-in forces the interactive variant regardless.
    const auto in = makePolicy("hipster-in", platform, params);
    const auto co = makePolicy("hipster-co", platform, params);
    EXPECT_NE(in->name(), co->name());
}

TEST(ScenarioRunner, DiurnalRunnerRunsTheNamedWorkload)
{
    ExperimentRunner runner = makeDiurnalRunner("memcached", 30.0, 4);
    EXPECT_EQ(runner.workload().params.name, "memcached");
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    const auto result = runner.run(policy, 30.0);
    EXPECT_EQ(result.series.size(), 30u);
    EXPECT_EQ(result.workloadName, "memcached");
}

} // namespace
} // namespace hipster
