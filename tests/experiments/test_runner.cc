/**
 * @file
 * Integration tests for the experiment runner: full closed-loop runs
 * wiring platform + app + load trace + policy, collocation, energy
 * accounting and determinism.
 */

#include <gtest/gtest.h>

#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "experiments/oracle.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

namespace hipster
{
namespace
{

TEST(Runner, StaticRunProducesFullSeries)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.5), 1);
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    const auto result = runner.run(policy, 30.0);
    EXPECT_EQ(result.series.size(), 30u);
    EXPECT_EQ(result.policyName, "Static(all-big)");
    EXPECT_EQ(result.workloadName, "memcached");
    EXPECT_EQ(result.migrations, 0u);
    for (const auto &m : result.series) {
        EXPECT_EQ(m.config.label(), "2B-1.15");
        EXPECT_GT(m.power, 0.0);
        EXPECT_FALSE(m.batchPresent);
    }
}

TEST(Runner, EnergyEqualsSumOfIntervalEnergies)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.4), 2);
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    const auto result = runner.run(policy, 20.0);
    double total = 0.0;
    for (const auto &m : result.series)
        total += m.energy;
    EXPECT_NEAR(result.summary.energy, total, 1e-6);
    EXPECT_NEAR(runner.platform().energyMeter().totalEnergy(), total,
                1e-6);
}

TEST(Runner, ObserverSeesEveryInterval)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.3), 3);
    StaticPolicy policy = StaticPolicy::allSmall(runner.platform());
    std::size_t seen = 0;
    runner.run(policy, 10.0,
               [&](const IntervalMetrics &) { ++seen; });
    EXPECT_EQ(seen, 10u);
}

TEST(Runner, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                                diurnalTrace(60.0, 9), 42);
        OctopusManPolicy policy(runner.platform(), {});
        return runner.run(policy, 60.0);
    };
    const auto a = run_once();
    const auto b = run_once();
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t i = 0; i < a.series.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.series[i].tailLatency,
                         b.series[i].tailLatency);
        EXPECT_EQ(a.series[i].config, b.series[i].config);
    }
    EXPECT_DOUBLE_EQ(a.summary.energy, b.summary.energy);
}

TEST(Runner, StaticSmallViolatesAtHighLoadMemcached)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.9), 4);
    StaticPolicy policy = StaticPolicy::allSmall(runner.platform());
    const auto result = runner.run(policy, 30.0);
    EXPECT_LT(result.summary.qosGuarantee, 0.2);
    EXPECT_GT(result.summary.qosTardiness, 1.0);
}

TEST(Runner, DynamicPolicyActuatesPlatform)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            diurnalTrace(120.0, 5), 5);
    OctopusManPolicy policy(runner.platform(), {});
    const auto result = runner.run(policy, 120.0);
    EXPECT_GT(result.migrations, 0u);
    // Octopus-Man pins every cluster at max DVFS: no transitions
    // after the boot interval.
    bool saw_small_only = false;
    for (const auto &m : result.series)
        saw_small_only |= m.config.nBig == 0;
    EXPECT_TRUE(saw_small_only);
}

TEST(Runner, CollocationProducesBatchIps)
{
    ExperimentRunner runner(Platform::junoR1(), webSearchWorkload(),
                            std::make_shared<ConstantTrace>(0.3), 6);
    runner.setBatch(std::make_shared<BatchWorkload>(
        std::vector<BatchKernel>{SpecCatalog::byName("calculix")}));
    StaticPolicy policy =
        StaticPolicy::allBig(runner.platform(), PolicyVariant::Collocated);
    const auto result = runner.run(policy, 20.0);
    for (const auto &m : result.series) {
        EXPECT_TRUE(m.batchPresent);
        EXPECT_TRUE(m.ipsValid);
        // LC on big cluster => batch on the 4 small cores.
        EXPECT_GT(m.batchSmallIps, 0.0);
        EXPECT_DOUBLE_EQ(m.batchBigIps, 0.0);
    }
    EXPECT_GT(result.summary.meanBatchIps, 0.0);
}

TEST(Runner, CollocationDegradesLcTail)
{
    // The Section 3.5 observation: collocation inflates the LC tail.
    auto run_with = [](bool with_batch) {
        ExperimentRunner runner(Platform::junoR1(), webSearchWorkload(),
                                std::make_shared<ConstantTrace>(0.6), 7);
        if (with_batch) {
            runner.setBatch(std::make_shared<BatchWorkload>(
                std::vector<BatchKernel>{SpecCatalog::byName("lbm")}));
        }
        StaticPolicy policy = StaticPolicy::allBig(
            runner.platform(), with_batch ? PolicyVariant::Collocated
                                          : PolicyVariant::Interactive);
        return runner.run(policy, 30.0);
    };
    const auto solo = run_with(false);
    const auto collocated = run_with(true);
    double solo_tail = 0.0, co_tail = 0.0;
    for (std::size_t i = 5; i < 30; ++i) {
        solo_tail += solo.series[i].tailLatency;
        co_tail += collocated.series[i].tailLatency;
    }
    EXPECT_GT(co_tail, solo_tail * 1.05);
}

TEST(Runner, InteractiveVariantKeepsBatchSuspended)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.4), 8);
    auto batch = std::make_shared<BatchWorkload>(
        std::vector<BatchKernel>{SpecCatalog::byName("povray")});
    runner.setBatch(batch);
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    const auto result = runner.run(policy, 10.0);
    for (const auto &m : result.series)
        EXPECT_FALSE(m.batchPresent);
    EXPECT_DOUBLE_EQ(batch->totalRetired(), 0.0);
}

TEST(Runner, HipsterInFullLoopImprovesOverOctopusMan)
{
    // Condensed Table 3 check on a short diurnal: HipsterIn must
    // deliver a higher QoS guarantee than Octopus-Man.
    auto run_policy = [](const std::string &name) {
        ExperimentRunner runner = makeDiurnalRunner("memcached", 400.0, 11);
        HipsterParams params = tunedHipsterParams("memcached");
        params.learningPhase = 150.0;
        auto policy = makePolicy(name, runner.platform(), params);
        return runner.run(*policy, 400.0);
    };
    const auto hipster = run_policy("hipster-in");
    const auto octopus = run_policy("octopus-man");
    EXPECT_GT(hipster.summary.qosGuarantee,
              octopus.summary.qosGuarantee);
}

TEST(Runner, RejectsBadConstruction)
{
    EXPECT_THROW(ExperimentRunner(Platform::junoR1(),
                                  memcachedWorkload(), nullptr, 1),
                 FatalError);
    RunnerOptions options;
    options.interval = 0.0;
    EXPECT_THROW(ExperimentRunner(Platform::junoR1(),
                                  memcachedWorkload(),
                                  std::make_shared<ConstantTrace>(0.5),
                                  1, options),
                 FatalError);
}

TEST(RunnerStepping, ZeroDurationRunIsEmpty)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.5), 1);
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    const auto result = runner.run(policy, 0.0);
    EXPECT_TRUE(result.series.empty());
    EXPECT_EQ(result.policyName, "Static(all-big)");
    EXPECT_DOUBLE_EQ(result.summary.energy, 0.0);
    // The runner is reusable after an empty run.
    EXPECT_EQ(runner.run(policy, 5.0).series.size(), 5u);
}

TEST(RunnerStepping, FinishWithoutStepYieldsEmptyResult)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.5), 1);
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    runner.beginRun(policy);
    EXPECT_EQ(runner.stepsTaken(), 0u);
    const auto result = runner.finishRun();
    EXPECT_TRUE(result.series.empty());
    EXPECT_DOUBLE_EQ(result.summary.energy, 0.0);
}

TEST(RunnerStepping, OverrideReplacesTheTraceIncludingFinalInterval)
{
    // The trace offers 0.5; overrides must win on any interval they
    // are passed for — including the last one before finishRun.
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.5), 1);
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    runner.beginRun(policy, 3);
    EXPECT_DOUBLE_EQ(runner.stepNext(policy).offeredLoad, 0.5);
    EXPECT_DOUBLE_EQ(runner.stepNext(policy, 0.25).offeredLoad, 0.25);
    EXPECT_DOUBLE_EQ(runner.stepNext(policy, 0.75).offeredLoad, 0.75);
    const auto result = runner.finishRun();
    ASSERT_EQ(result.series.size(), 3u);
    EXPECT_DOUBLE_EQ(result.series[2].offeredLoad, 0.75);
}

TEST(RunnerStepping, LifecycleGuardsAreFatal)
{
    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            std::make_shared<ConstantTrace>(0.5), 1);
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    EXPECT_THROW(runner.stepNext(policy), FatalError);
    EXPECT_THROW(runner.finishRun(), FatalError);
    runner.beginRun(policy);
    EXPECT_THROW(runner.beginRun(policy), FatalError);
    // A guard trip must not wedge the active run.
    runner.stepNext(policy);
    EXPECT_EQ(runner.finishRun().series.size(), 1u);
}

TEST(RunnerStepping, SteppedRunMatchesRunBitwise)
{
    auto make = [] {
        return ExperimentRunner(Platform::junoR1(), memcachedWorkload(),
                                diurnalTrace(40.0, 9), 21);
    };
    ExperimentRunner whole = make();
    OctopusManPolicy wholePolicy(whole.platform(), {});
    const auto batch = whole.run(wholePolicy, 40.0);

    ExperimentRunner stepped = make();
    OctopusManPolicy steppedPolicy(stepped.platform(), {});
    stepped.beginRun(steppedPolicy, 40);
    for (std::size_t k = 0; k < 40; ++k)
        stepped.stepNext(steppedPolicy);
    const auto incremental = stepped.finishRun();

    ASSERT_EQ(batch.series.size(), incremental.series.size());
    for (std::size_t i = 0; i < batch.series.size(); ++i) {
        EXPECT_DOUBLE_EQ(batch.series[i].tailLatency,
                         incremental.series[i].tailLatency);
        EXPECT_DOUBLE_EQ(batch.series[i].power,
                         incremental.series[i].power);
        EXPECT_EQ(batch.series[i].config, incremental.series[i].config);
    }
    EXPECT_DOUBLE_EQ(batch.summary.energy, incremental.summary.energy);
    EXPECT_EQ(batch.migrations, incremental.migrations);
}

TEST(Scenario, FactoriesAndDefaults)
{
    Platform platform(Platform::junoR1());
    for (const auto &name : tablePolicyNames())
        EXPECT_NO_THROW(makePolicy(name, platform));
    EXPECT_THROW(makePolicy("nonexistent", platform), FatalError);
    EXPECT_DOUBLE_EQ(diurnalDurationFor("memcached"), 1440.0);
    EXPECT_DOUBLE_EQ(diurnalDurationFor("websearch"), 1080.0);
    EXPECT_DOUBLE_EQ(tunedHipsterParams("memcached").bucketPercent, 8.0);
    const auto trace = diurnalTrace(600.0);
    EXPECT_GT(trace->at(300.0), 0.0);
    const auto ramp = rampTrace50to100();
    EXPECT_DOUBLE_EQ(ramp->at(0.0), 0.50);
    EXPECT_DOUBLE_EQ(ramp->at(300.0), 1.00);
}

TEST(Oracle, FeasibleSetShrinksWithLoad)
{
    HetCmpOracle oracle(Platform::junoR1(), memcachedWorkload(),
                        {2.0, 8.0, 0.9, 1.0, 3});
    Platform platform(Platform::junoR1());
    const auto states = ConfigSpace::paperStates(platform);
    const auto low = oracle.bestConfig(0.2, states);
    const auto high = oracle.bestConfig(0.95, states);
    ASSERT_TRUE(low.best.has_value());
    ASSERT_TRUE(high.best.has_value());
    // Low load is served by a cheaper configuration.
    EXPECT_LT(low.best->power, high.best->power);
    // High load needs big cores.
    EXPECT_GT(high.best->config.nBig, 0u);
}

TEST(Oracle, InfeasibleLoadYieldsEmptyBest)
{
    HetCmpOracle oracle(Platform::junoR1(), memcachedWorkload(),
                        {2.0, 8.0, 0.9, 1.0, 3});
    // Only a 1-small-core candidate, at 80% load: hopeless.
    const auto entry = oracle.bestConfig(
        0.8, {CoreConfig{0, 1, 0.60, 0.65}});
    EXPECT_FALSE(entry.best.has_value());
}

} // namespace
} // namespace hipster
