/**
 * @file
 * Tests for the latency-critical application simulator: open and
 * closed loops, interval statistics, reconfiguration, drops, and
 * determinism.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/apps.hh"
#include "workloads/latency_app.hh"

namespace hipster
{
namespace
{

LcAppParams
tinyOpenLoopApp()
{
    LcAppParams p;
    p.name = "tiny";
    p.maxLoad = 1000.0;
    p.loadScale = 1.0;
    p.tailPercentile = 95.0;
    p.qosTargetMs = 10.0;
    p.mode = ArrivalMode::OpenLoop;
    p.demand.meanComputeInsn = 1e6; // 1 ms at 1e9 IPS
    p.demand.cvCompute = 0.5;
    p.demand.meanMemStall = 0.0;
    p.demand.cvMemStall = 0.0;
    p.demand.ipcBig = 1.0;
    p.demand.ipcSmall = 0.5;
    return p;
}

std::vector<ServerSpec>
servers(std::initializer_list<Ips> rates)
{
    std::vector<ServerSpec> out;
    CoreId core = 0;
    for (Ips rate : rates)
        out.push_back({rate, 1.0, core++});
    return out;
}

TEST(LatencyApp, ThroughputTracksOfferedLoad)
{
    LatencyCriticalApp app(tinyOpenLoopApp(), 1);
    app.configure(servers({1e9, 1e9}), 0.0);
    LcIntervalStats stats;
    double completed = 0.0;
    for (int k = 0; k < 20; ++k) {
        stats = app.runInterval(k, k + 1, 0.5);
        completed += stats.completed;
    }
    // Offered 500 RPS for 20 s at utilization ~0.25: all served.
    EXPECT_NEAR(completed / 20.0, 500.0, 25.0);
    EXPECT_NEAR(stats.throughput, 500.0, 75.0);
}

TEST(LatencyApp, TailLatencyLowAtLowLoad)
{
    LatencyCriticalApp app(tinyOpenLoopApp(), 2);
    app.configure(servers({1e9, 1e9}), 0.0);
    const auto stats = app.runInterval(0.0, 5.0, 0.1);
    // Nearly no queueing: tail close to the service tail (~2-3 ms).
    EXPECT_GT(stats.tailLatency, 0.5);
    EXPECT_LT(stats.tailLatency, 6.0);
}

TEST(LatencyApp, OverloadGrowsQueueAndTail)
{
    LatencyCriticalApp app(tinyOpenLoopApp(), 3);
    app.configure(servers({1e9}), 0.0); // capacity ~1000 RPS
    LcIntervalStats last;
    for (int k = 0; k < 10; ++k)
        last = app.runInterval(k, k + 1, 1.5); // 1500 RPS offered
    EXPECT_GT(last.queueDepth, 100u);
    EXPECT_GT(last.tailLatency, 100.0); // way past 10 ms target
}

TEST(LatencyApp, UtilizationScalesWithLoad)
{
    LatencyCriticalApp app(tinyOpenLoopApp(), 4);
    app.configure(servers({1e9, 1e9}), 0.0);
    const auto low = app.runInterval(0.0, 5.0, 0.2);
    app.reset();
    app.configure(servers({1e9, 1e9}), 0.0);
    const auto high = app.runInterval(0.0, 5.0, 0.9);
    EXPECT_NEAR(low.utilization, 0.1, 0.05);
    EXPECT_NEAR(high.utilization, 0.45, 0.1);
    EXPECT_LT(low.utilization, high.utilization);
}

TEST(LatencyApp, ZeroLoadProducesNothing)
{
    LatencyCriticalApp app(tinyOpenLoopApp(), 5);
    app.configure(servers({1e9}), 0.0);
    const auto stats = app.runInterval(0.0, 1.0, 0.0);
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_DOUBLE_EQ(stats.tailLatency, 0.0);
    EXPECT_DOUBLE_EQ(stats.utilization, 0.0);
}

TEST(LatencyApp, DeterministicForSameSeed)
{
    LatencyCriticalApp a(tinyOpenLoopApp(), 42), b(tinyOpenLoopApp(), 42);
    a.configure(servers({1e9}), 0.0);
    b.configure(servers({1e9}), 0.0);
    for (int k = 0; k < 5; ++k) {
        const auto sa = a.runInterval(k, k + 1, 0.6);
        const auto sb = b.runInterval(k, k + 1, 0.6);
        EXPECT_EQ(sa.completed, sb.completed);
        EXPECT_DOUBLE_EQ(sa.tailLatency, sb.tailLatency);
    }
}

TEST(LatencyApp, DifferentSeedsDiffer)
{
    LatencyCriticalApp a(tinyOpenLoopApp(), 1), b(tinyOpenLoopApp(), 2);
    a.configure(servers({1e9}), 0.0);
    b.configure(servers({1e9}), 0.0);
    const auto sa = a.runInterval(0, 1, 0.6);
    const auto sb = b.runInterval(0, 1, 0.6);
    EXPECT_NE(sa.completed, sb.completed);
}

TEST(LatencyApp, ReconfigureMidRunKeepsServing)
{
    LatencyCriticalApp app(tinyOpenLoopApp(), 6);
    app.configure(servers({1e9, 1e9}), 0.0);
    app.runInterval(0, 1, 0.8);
    app.configure(servers({5e8}), 1.0, /*stall=*/2e-3);
    const auto stats = app.runInterval(1, 2, 0.3);
    EXPECT_GT(stats.completed, 0u);
    ASSERT_EQ(stats.usage.size(), 1u);
}

TEST(LatencyApp, LoadScaleDescalesThroughput)
{
    LcAppParams p = tinyOpenLoopApp();
    p.loadScale = 0.1; // simulate 100 RPS at full load
    LatencyCriticalApp app(p, 7);
    app.configure(servers({1e9}), 0.0);
    double completed = 0.0;
    LcIntervalStats stats;
    for (int k = 0; k < 20; ++k) {
        stats = app.runInterval(k, k + 1, 0.5);
        completed += stats.completed;
    }
    // Internally ~50 arrivals/s; reported throughput ~500 RPS.
    EXPECT_NEAR(completed / 20.0, 50.0, 10.0);
    EXPECT_NEAR(stats.throughput, 500.0, 120.0);
    EXPECT_NEAR(stats.offeredRate, 500.0, 1e-9);
}

TEST(LatencyApp, ClosedLoopThroughputSaturates)
{
    LcAppParams p = tinyOpenLoopApp();
    p.mode = ArrivalMode::ClosedLoop;
    p.thinkTime = 0.1;
    p.nominalResponse = 0.001;
    p.maxLoad = 100.0; // ~10.1 users at full load
    LatencyCriticalApp app(p, 8);
    // One slow server: capacity 100/s for 1 ms requests.
    app.configure(servers({1e9}), 0.0);
    LcIntervalStats stats;
    for (int k = 0; k < 10; ++k)
        stats = app.runInterval(k, k + 1, 1.0);
    // Closed loop self-limits near users/(think+service).
    EXPECT_GT(stats.throughput, 60.0);
    EXPECT_LT(stats.throughput, 120.0);
    EXPECT_GT(app.activeUsers(), 0u);
}

TEST(LatencyApp, ClosedLoopUserPopulationFollowsLoad)
{
    LcAppParams p = tinyOpenLoopApp();
    p.mode = ArrivalMode::ClosedLoop;
    p.thinkTime = 1.0;
    p.nominalResponse = 0.0;
    p.maxLoad = 50.0;
    LatencyCriticalApp app(p, 9);
    app.configure(servers({1e9}), 0.0);
    app.runInterval(0, 1, 1.0);
    EXPECT_EQ(app.activeUsers(), 50u);
    app.runInterval(1, 2, 0.5);
    EXPECT_EQ(app.activeUsers(), 25u);
    app.runInterval(2, 3, 0.0);
    EXPECT_EQ(app.activeUsers(), 0u);
}

TEST(LatencyApp, ClosedLoopShrinkDoesNotResurrectUsers)
{
    LcAppParams p = tinyOpenLoopApp();
    p.mode = ArrivalMode::ClosedLoop;
    p.thinkTime = 0.05;
    p.nominalResponse = 0.0;
    p.maxLoad = 100.0;
    LatencyCriticalApp app(p, 10);
    app.configure(servers({1e9}), 0.0);
    app.runInterval(0, 1, 1.0);
    // Drop to zero users: no completions should trickle long after.
    app.runInterval(1, 2, 0.0);
    const auto stats = app.runInterval(2, 3, 0.0);
    EXPECT_EQ(stats.completed, 0u);
}

TEST(LatencyApp, DropsCountedUnderExtremeOverload)
{
    LcAppParams p = tinyOpenLoopApp();
    p.maxQueue = 50;
    LatencyCriticalApp app(p, 11);
    app.configure(servers({1e8}), 0.0); // 10x too slow
    LcIntervalStats stats;
    std::uint64_t drops = 0;
    for (int k = 0; k < 5; ++k) {
        stats = app.runInterval(k, k + 1, 1.0);
        drops += stats.dropped;
    }
    EXPECT_GT(drops, 0u);
}

TEST(LatencyApp, RunBeforeConfigurePanics)
{
    LatencyCriticalApp app(tinyOpenLoopApp(), 12);
    EXPECT_DEATH(app.runInterval(0, 1, 0.5), "configure");
}

TEST(LatencyApp, RejectsInvalidParams)
{
    LcAppParams p = tinyOpenLoopApp();
    p.maxLoad = 0.0;
    EXPECT_THROW(LatencyCriticalApp(p, 1), FatalError);

    p = tinyOpenLoopApp();
    p.loadScale = 0.0;
    EXPECT_THROW(LatencyCriticalApp(p, 1), FatalError);

    p = tinyOpenLoopApp();
    p.qosTargetMs = -5.0;
    EXPECT_THROW(LatencyCriticalApp(p, 1), FatalError);

    p = tinyOpenLoopApp();
    p.tailPercentile = 100.0;
    EXPECT_THROW(LatencyCriticalApp(p, 1), FatalError);
}

TEST(LatencyApp, ConfigureRejectsEmptyServerSet)
{
    LatencyCriticalApp app(tinyOpenLoopApp(), 13);
    EXPECT_THROW(app.configure({}, 0.0), FatalError);
}

} // namespace
} // namespace hipster
