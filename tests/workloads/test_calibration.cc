/**
 * @file
 * Calibration tests: the simulated Memcached and Web-Search must
 * reproduce the paper's Table 1 / Figure 2 anchor behaviours on the
 * simulated Juno R1:
 *
 *  - max load (100%) is served within the tail target by 2 big cores
 *    at the highest DVFS, and violated slightly above it;
 *  - the small cluster covers low load but saturates around 63%
 *    (Memcached) / ~50% (Web-Search);
 *  - mixed big+small configurations win the intermediate range on
 *    power (the HetCMP argument of Section 2).
 */

#include <gtest/gtest.h>

#include "experiments/oracle.hh"
#include "workloads/apps.hh"

namespace hipster
{
namespace
{

class Calibration : public ::testing::Test
{
  protected:
    ConfigMeasurement
    probe(const LcWorkloadDef &def, const std::string &config,
          Fraction load)
    {
        OracleOptions options;
        options.warmup = 4.0;
        options.measure = 16.0;
        HetCmpOracle oracle(Platform::junoR1(), def, options);
        return oracle.measure(load, parseCoreConfig(config, 0.65));
    }
};

// --- Memcached (Table 1: 36 kRPS max, 10 ms p95). ---

TEST_F(Calibration, MemcachedMaxLoadMetOnTwoBigCores)
{
    const auto m = probe(memcachedWorkload(), "2B-1.15", 1.0);
    EXPECT_TRUE(m.feasible);
    EXPECT_LT(m.tailLatency, 10.0);
    // Throughput is reported in paper units.
    EXPECT_NEAR(m.throughput, 36000.0, 36000.0 * 0.05);
}

TEST_F(Calibration, MemcachedOverloadViolatesOnTwoBigCores)
{
    const auto m = probe(memcachedWorkload(), "2B-1.15", 1.12);
    EXPECT_FALSE(m.feasible);
}

TEST_F(Calibration, MemcachedSmallClusterCoversSixtyPercent)
{
    EXPECT_TRUE(probe(memcachedWorkload(), "4S-0.65", 0.55).feasible);
}

TEST_F(Calibration, MemcachedSmallClusterSaturatesAboveSeventyPercent)
{
    EXPECT_FALSE(probe(memcachedWorkload(), "4S-0.65", 0.72).feasible);
}

TEST_F(Calibration, MemcachedMixedConfigWinsIntermediateLoad)
{
    // At ~80% load the mixed 2B2S at low DVFS meets QoS with less
    // power than 2B at max DVFS (Figure 2a's core argument).
    const auto mixed = probe(memcachedWorkload(), "2B2S-0.60", 0.80);
    const auto big = probe(memcachedWorkload(), "2B-1.15", 0.80);
    ASSERT_TRUE(mixed.feasible);
    ASSERT_TRUE(big.feasible);
    EXPECT_LT(mixed.power, big.power);
}

TEST_F(Calibration, MemcachedSmallSavesPowerAtLowLoad)
{
    const auto small = probe(memcachedWorkload(), "2S-0.65", 0.20);
    const auto big = probe(memcachedWorkload(), "2B-1.15", 0.20);
    ASSERT_TRUE(small.feasible);
    EXPECT_LT(small.power, big.power * 0.85);
}

// --- Web-Search (Table 1: 44 QPS max, 500 ms p90, 2 s think). ---

TEST_F(Calibration, WebSearchMaxLoadMetOnTwoBigCores)
{
    const auto m = probe(webSearchWorkload(), "2B-1.15", 1.0);
    EXPECT_TRUE(m.feasible);
    EXPECT_LT(m.tailLatency, 500.0);
    // Closed loop: achieved QPS within ~15% of the nominal 44.
    EXPECT_NEAR(m.throughput, 44.0, 44.0 * 0.15);
}

TEST_F(Calibration, WebSearchSmallClusterCoversLowLoad)
{
    EXPECT_TRUE(probe(webSearchWorkload(), "4S-0.65", 0.33).feasible);
}

TEST_F(Calibration, WebSearchSmallClusterSaturatesNearHalfLoad)
{
    EXPECT_FALSE(probe(webSearchWorkload(), "4S-0.65", 0.60).feasible);
}

TEST_F(Calibration, WebSearchNeedsBigCoresEarlierThanMemcached)
{
    // The paper's Figure 2 contrast: Web-Search leaves the small
    // cluster around 50% load, Memcached around 65%.
    const auto ws = probe(webSearchWorkload(), "4S-0.65", 0.58);
    const auto mc = probe(memcachedWorkload(), "4S-0.65", 0.58);
    EXPECT_FALSE(ws.feasible);
    EXPECT_TRUE(mc.feasible);
}

TEST_F(Calibration, WebSearchMixedConfigWinsIntermediateLoad)
{
    const auto mixed = probe(webSearchWorkload(), "2B2S-0.60", 0.69);
    const auto big = probe(webSearchWorkload(), "2B-1.15", 0.69);
    ASSERT_TRUE(mixed.feasible);
    ASSERT_TRUE(big.feasible);
    EXPECT_LT(mixed.power, big.power);
}

TEST_F(Calibration, WorkloadLookupByName)
{
    EXPECT_EQ(lcWorkloadByName("memcached").params.name, "memcached");
    EXPECT_EQ(lcWorkloadByName("websearch").params.name, "websearch");
    EXPECT_EQ(lcWorkloadByName("web-search").params.name, "websearch");
    EXPECT_THROW(lcWorkloadByName("mysql"), FatalError);
}

TEST_F(Calibration, Table1TargetsEncoded)
{
    const auto mc = memcachedWorkload().params;
    EXPECT_DOUBLE_EQ(mc.maxLoad, 36000.0);
    EXPECT_DOUBLE_EQ(mc.qosTargetMs, 10.0);
    EXPECT_DOUBLE_EQ(mc.tailPercentile, 95.0);
    EXPECT_EQ(mc.mode, ArrivalMode::OpenLoop);

    const auto ws = webSearchWorkload().params;
    EXPECT_DOUBLE_EQ(ws.maxLoad, 44.0);
    EXPECT_DOUBLE_EQ(ws.qosTargetMs, 500.0);
    EXPECT_DOUBLE_EQ(ws.tailPercentile, 90.0);
    EXPECT_EQ(ws.mode, ArrivalMode::ClosedLoop);
    EXPECT_DOUBLE_EQ(ws.thinkTime, 2.0);
}

} // namespace
} // namespace hipster
