/**
 * @file
 * Tests for the service-demand model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/service_model.hh"

namespace hipster
{
namespace
{

ServiceDemandParams
baseParams()
{
    ServiceDemandParams p;
    p.meanComputeInsn = 1e6;
    p.cvCompute = 0.5;
    p.meanMemStall = 1e-3;
    p.cvMemStall = 0.5;
    p.ipcBig = 1.0;
    p.ipcSmall = 0.5;
    return p;
}

TEST(ServiceModel, SampleMeansMatchParameters)
{
    ServiceModel model(baseParams());
    Rng rng(1);
    double insn = 0.0, stall = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const Request r = model.sample(rng, 0.0);
        insn += r.computeInsn;
        stall += r.memStall;
    }
    EXPECT_NEAR(insn / n, 1e6, 1e6 * 0.02);
    EXPECT_NEAR(stall / n, 1e-3, 1e-3 * 0.02);
}

TEST(ServiceModel, ZipfMultiplierPreservesMeanDemand)
{
    ServiceDemandParams p = baseParams();
    p.zipfRanks = 1000;
    p.zipfAlpha = 0.9;
    p.zipfExponent = 0.3;
    ServiceModel model(p);
    Rng rng(2);
    double insn = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        insn += model.sample(rng, 0.0).computeInsn;
    // The multiplier is normalized to unit mean.
    EXPECT_NEAR(insn / n, 1e6, 1e6 * 0.03);
}

TEST(ServiceModel, ZipfAddsVariance)
{
    ServiceDemandParams p = baseParams();
    p.cvCompute = 0.0;
    ServiceModel plain(p);
    p.zipfRanks = 1000;
    p.zipfExponent = 0.5;
    ServiceModel zipfy(p);
    Rng rng1(3), rng2(3);
    double lo = 1e18, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = zipfy.sample(rng2, 0.0).computeInsn;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        // Without Zipf and zero CV, demand is deterministic.
        EXPECT_DOUBLE_EQ(plain.sample(rng1, 0.0).computeInsn, 1e6);
    }
    EXPECT_LT(lo, hi * 0.5); // spread from popularity skew
}

TEST(ServiceModel, InstructionRateScalesWithTypeAndFrequency)
{
    ServiceModel model(baseParams());
    EXPECT_DOUBLE_EQ(model.instructionRate(CoreType::Big, 1.0), 1e9);
    EXPECT_DOUBLE_EQ(model.instructionRate(CoreType::Big, 2.0), 2e9);
    EXPECT_DOUBLE_EQ(model.instructionRate(CoreType::Small, 1.0), 5e8);
}

TEST(ServiceModel, MeanServiceTimeComposesComputeAndStall)
{
    ServiceModel model(baseParams());
    // 1e6 insn at 1e9 IPS = 1 ms, plus 1 ms stall = 2 ms.
    EXPECT_NEAR(model.meanServiceTime(CoreType::Big, 1.0), 2e-3, 1e-12);
    // Small core at the same frequency: 2 ms compute + 1 ms stall.
    EXPECT_NEAR(model.meanServiceTime(CoreType::Small, 1.0), 3e-3, 1e-12);
}

TEST(ServiceModel, StallPortionDoesNotScaleWithFrequency)
{
    ServiceModel model(baseParams());
    const Seconds fast = model.meanServiceTime(CoreType::Big, 2.0);
    const Seconds slow = model.meanServiceTime(CoreType::Big, 1.0);
    // Compute halves (1 ms -> 0.5 ms); stall stays at 1 ms.
    EXPECT_NEAR(slow - fast, 0.5e-3, 1e-12);
}

TEST(ServiceModel, UserIdFlowsThrough)
{
    ServiceModel model(baseParams());
    Rng rng(4);
    EXPECT_EQ(model.sample(rng, 1.0, 77).userId, 77u);
    EXPECT_DOUBLE_EQ(model.sample(rng, 2.5, 0).arrival, 2.5);
}

TEST(ServiceModel, RejectsInvalidParams)
{
    ServiceDemandParams p = baseParams();
    p.meanComputeInsn = 0.0;
    p.meanMemStall = 0.0;
    EXPECT_THROW(ServiceModel{p}, FatalError);

    p = baseParams();
    p.ipcBig = 0.0;
    EXPECT_THROW(ServiceModel{p}, FatalError);

    p = baseParams();
    p.meanComputeInsn = -1.0;
    EXPECT_THROW(ServiceModel{p}, FatalError);
}

} // namespace
} // namespace hipster
