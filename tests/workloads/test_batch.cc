/**
 * @file
 * Tests for the batch workload catalog, execution and the
 * contention model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/batch.hh"
#include "workloads/contention.hh"

namespace hipster
{
namespace
{

TEST(SpecCatalog, HasTheTwelveFigure11Programs)
{
    const auto &all = SpecCatalog::all();
    ASSERT_EQ(all.size(), 12u);
    EXPECT_EQ(all.front().name, "povray");
    EXPECT_EQ(all.back().name, "zeusmp");
}

TEST(SpecCatalog, LookupByName)
{
    EXPECT_DOUBLE_EQ(SpecCatalog::byName("lbm").memIntensity, 0.90);
    EXPECT_THROW(SpecCatalog::byName("gcc"), FatalError);
}

TEST(SpecCatalog, CalculixMostComputeBoundLbmMostMemoryBound)
{
    const auto &calculix = SpecCatalog::byName("calculix");
    const auto &lbm = SpecCatalog::byName("lbm");
    for (const auto &kernel : SpecCatalog::all()) {
        EXPECT_LE(kernel.memIntensity, lbm.memIntensity);
        EXPECT_LE(calculix.memIntensity, kernel.memIntensity);
    }
    EXPECT_GT(calculix.ipcBig, lbm.ipcBig);
}

TEST(BatchKernelIps, ComputeBoundScalesWithFrequency)
{
    BatchKernel kernel{"compute", 2.0, 1.0, 0.0};
    const Ips full = BatchWorkload::kernelIps(kernel, CoreType::Big,
                                              1.15, 1.15);
    const Ips half = BatchWorkload::kernelIps(kernel, CoreType::Big,
                                              0.575, 1.15);
    EXPECT_NEAR(half, full / 2.0, 1.0);
}

TEST(BatchKernelIps, MemoryBoundInsensitiveToFrequency)
{
    BatchKernel kernel{"membound", 0.5, 0.4, 1.0};
    const Ips full = BatchWorkload::kernelIps(kernel, CoreType::Big,
                                              1.15, 1.15);
    const Ips low = BatchWorkload::kernelIps(kernel, CoreType::Big,
                                             0.60, 1.15);
    EXPECT_NEAR(low, full, 1.0);
}

TEST(BatchKernelIps, SmallCoreUsesSmallIpc)
{
    BatchKernel kernel{"k", 2.0, 0.8, 0.0};
    EXPECT_NEAR(BatchWorkload::kernelIps(kernel, CoreType::Small, 0.65,
                                         0.65),
                0.8 * 0.65e9, 1.0);
}

class BatchRun : public ::testing::Test
{
  protected:
    BatchRun() : platform(Platform::junoR1()) {}
    Platform platform;
    ContentionModel contention;
};

TEST_F(BatchRun, RunIntervalRetiresInstructions)
{
    BatchWorkload batch({SpecCatalog::byName("povray")});
    platform.applyConfig({2, 0, 1.15, 0.65}); // LC on big, 4 small spare
    platform.perfCounters().beginInterval();
    std::vector<ClusterPressure> pressure(2);
    const auto stats = batch.runInterval(
        platform, platform.spareCores(), contention, pressure, 1.0);
    EXPECT_EQ(stats.jobsRunning, 4u);
    EXPECT_GT(stats.smallIps, 0.0);
    EXPECT_DOUBLE_EQ(stats.bigIps, 0.0);
    EXPECT_GT(batch.totalRetired(), 0.0);
}

TEST_F(BatchRun, SuspendedBatchDoesNothing)
{
    BatchWorkload batch({SpecCatalog::byName("povray")});
    batch.setSuspended(true);
    platform.applyConfig({2, 0, 1.15, 0.65});
    std::vector<ClusterPressure> pressure(2);
    const auto stats = batch.runInterval(
        platform, platform.spareCores(), contention, pressure, 1.0);
    EXPECT_EQ(stats.jobsRunning, 0u);
    EXPECT_DOUBLE_EQ(stats.totalIps(), 0.0);
}

TEST_F(BatchRun, BigCoresYieldMoreIpsForComputeBound)
{
    BatchWorkload batch({SpecCatalog::byName("calculix")});
    std::vector<ClusterPressure> pressure(2);
    // LC on small cluster: batch gets the big cores.
    platform.applyConfig({0, 4, 1.15, 0.65});
    platform.perfCounters().beginInterval();
    const auto on_big = batch.runInterval(
        platform, platform.spareCores(), contention, pressure, 1.0);
    // LC on big cluster: batch gets the small cores.
    platform.applyConfig({2, 0, 1.15, 0.65});
    platform.perfCounters().beginInterval();
    const auto on_small = batch.runInterval(
        platform, platform.spareCores(), contention, pressure, 1.0);
    // Per-core: 2 big cores beat 4 small cores for calculix
    // (paper: big can be ~2.6x more powerful).
    EXPECT_GT(on_big.bigIps / 2.0, on_small.smallIps / 4.0 * 2.0);
}

TEST_F(BatchRun, PressureOnAccumulatesPerCluster)
{
    BatchWorkload batch({SpecCatalog::byName("lbm")}); // mem 0.9
    platform.applyConfig({2, 0, 1.15, 0.65});
    const auto pressure =
        batch.pressureOn(platform, platform.spareCores());
    ASSERT_EQ(pressure.size(), 2u);
    EXPECT_DOUBLE_EQ(pressure[0].batch, 0.0);       // big cluster
    EXPECT_NEAR(pressure[1].batch, 4 * 0.9, 1e-9);  // small cluster
}

TEST_F(BatchRun, SuspendedExertsNoPressure)
{
    BatchWorkload batch({SpecCatalog::byName("lbm")});
    batch.setSuspended(true);
    platform.applyConfig({2, 0, 1.15, 0.65});
    const auto pressure =
        batch.pressureOn(platform, platform.spareCores());
    EXPECT_DOUBLE_EQ(pressure[1].batch, 0.0);
}

TEST_F(BatchRun, MixRoundRobinsAcrossCores)
{
    BatchWorkload batch(
        {SpecCatalog::byName("povray"), SpecCatalog::byName("lbm")});
    platform.applyConfig({2, 0, 1.15, 0.65});
    std::vector<ClusterPressure> pressure(2);
    const auto stats = batch.runInterval(
        platform, platform.spareCores(), contention, pressure, 1.0);
    ASSERT_EQ(stats.perJob.size(), 4u);
    // povray (compute) and lbm (memory) alternate; their retired
    // instruction counts differ strongly.
    EXPECT_GT(stats.perJob[0], stats.perJob[1] * 1.5);
}

TEST(BatchValidation, RejectsEmptyAndBadKernels)
{
    EXPECT_THROW(BatchWorkload({}), FatalError);
    EXPECT_THROW(BatchWorkload({BatchKernel{"x", 0.0, 0.5, 0.1}}),
                 FatalError);
    EXPECT_THROW(BatchWorkload({BatchKernel{"x", 1.0, 0.5, 1.5}}),
                 FatalError);
}

TEST(MaxClusterIps, MatchesTable2)
{
    Platform platform(Platform::junoR1());
    EXPECT_NEAR(maxClusterIps(platform, CoreType::Big), 4260e6,
                4260e6 * 0.02);
    EXPECT_NEAR(maxClusterIps(platform, CoreType::Small), 3298e6,
                3298e6 * 0.02);
}

// --- Contention model. ---

TEST(Contention, NoPressureNoInflation)
{
    ContentionModel model;
    std::vector<ClusterPressure> pressure(2);
    EXPECT_DOUBLE_EQ(model.lcStallScale(pressure, 0, 0.4), 1.0);
    EXPECT_DOUBLE_EQ(model.batchIpcFactor(pressure, 0, 0.5), 1.0);
}

TEST(Contention, SameClusterPressureDominatesCross)
{
    ContentionModel model;
    std::vector<ClusterPressure> same(2), cross(2);
    same[0].batch = 1.0;
    cross[1].batch = 1.0;
    EXPECT_GT(model.lcStallScale(same, 0, 0.4),
              model.lcStallScale(cross, 0, 0.4));
}

TEST(Contention, LcInflationScalesWithSensitivity)
{
    ContentionModel model;
    std::vector<ClusterPressure> pressure(2);
    pressure[0].batch = 2.0;
    const double sensitive = model.lcStallScale(pressure, 0, 0.5);
    const double robust = model.lcStallScale(pressure, 0, 0.1);
    EXPECT_GT(sensitive, robust);
    EXPECT_GT(robust, 1.0);
}

TEST(Contention, BatchFactorExcludesSelf)
{
    ContentionModel model;
    std::vector<ClusterPressure> pressure(2);
    pressure[0].batch = 0.9; // only this job
    // A job suffering only from itself sees no same-cluster pressure.
    EXPECT_DOUBLE_EQ(model.batchIpcFactor(pressure, 0, 0.9), 1.0);
}

TEST(Contention, LcActivityDegradesBatch)
{
    ContentionModel model;
    std::vector<ClusterPressure> pressure(2);
    pressure[0].lc = 0.5;
    EXPECT_LT(model.batchIpcFactor(pressure, 0, 0.0), 1.0);
}

TEST(Contention, FactorBoundedBelowOne)
{
    ContentionModel model;
    std::vector<ClusterPressure> pressure(1);
    pressure[0].batch = 100.0;
    pressure[0].lc = 100.0;
    const double factor = model.batchIpcFactor(pressure, 0, 0.0);
    EXPECT_GT(factor, 0.0);
    EXPECT_LT(factor, 0.2);
}

TEST(Contention, RejectsNegativeCoefficients)
{
    ContentionParams params;
    params.lcSameCluster = -1.0;
    EXPECT_THROW(ContentionModel{params}, FatalError);
}

} // namespace
} // namespace hipster
