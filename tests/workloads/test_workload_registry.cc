/**
 * @file
 * Tests for the workload registry and its key=value spec grammar:
 * bare names reproduce the calibrated Table 1 factories exactly,
 * aliases resolve, overrides (including us/ms/s time suffixes)
 * apply, and malformed specs fail fast with the schema or catalog
 * enumerated.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{
namespace
{

void
expectSameDef(const LcWorkloadDef &a, const LcWorkloadDef &b)
{
    EXPECT_EQ(a.params.name, b.params.name);
    EXPECT_EQ(a.params.maxLoad, b.params.maxLoad);
    EXPECT_EQ(a.params.loadScale, b.params.loadScale);
    EXPECT_EQ(a.params.tailPercentile, b.params.tailPercentile);
    EXPECT_EQ(a.params.qosTargetMs, b.params.qosTargetMs);
    EXPECT_EQ(a.params.thinkTime, b.params.thinkTime);
    EXPECT_EQ(a.params.demand.meanComputeInsn,
              b.params.demand.meanComputeInsn);
    EXPECT_EQ(a.params.demand.cvCompute, b.params.demand.cvCompute);
    EXPECT_EQ(a.params.demand.meanMemStall,
              b.params.demand.meanMemStall);
    EXPECT_EQ(a.params.demand.zipfExponent,
              b.params.demand.zipfExponent);
    EXPECT_EQ(a.params.demand.ipcBig, b.params.demand.ipcBig);
    EXPECT_EQ(a.params.demand.ipcSmall, b.params.demand.ipcSmall);
    EXPECT_EQ(a.traits.stallSensitivity, b.traits.stallSensitivity);
    EXPECT_EQ(a.traits.memPressure, b.traits.memPressure);
}

TEST(WorkloadRegistry, BareNamesReproduceTheCalibratedFactories)
{
    expectSameDef(makeWorkloadFromSpec("memcached"),
                  memcachedWorkload());
    expectSameDef(makeWorkloadFromSpec("websearch"),
                  webSearchWorkload());
}

TEST(WorkloadRegistry, AliasesResolveToTheCanonicalWorkload)
{
    expectSameDef(makeWorkloadFromSpec("mc"), memcachedWorkload());
    expectSameDef(makeWorkloadFromSpec("web-search"),
                  webSearchWorkload());
    expectSameDef(makeWorkloadFromSpec("syn"),
                  makeWorkloadFromSpec("synthetic"));
    const auto &registry = WorkloadRegistry::instance();
    EXPECT_EQ(registry.findWorkload("mc"),
              registry.findWorkload("memcached"));
    EXPECT_TRUE(registry.hasWorkload("web-search"));
    EXPECT_FALSE(registry.hasWorkload("memcached:qos=1"));
}

TEST(WorkloadRegistry, OverridesApplyOnTopOfTheCalibration)
{
    const LcWorkloadDef def =
        makeWorkloadFromSpec("memcached:qos=8,stall=0.5");
    EXPECT_DOUBLE_EQ(def.params.qosTargetMs, 8.0);
    EXPECT_DOUBLE_EQ(def.traits.stallSensitivity, 0.5);
    // Untouched keys keep the calibrated values.
    const LcWorkloadDef base = memcachedWorkload();
    EXPECT_EQ(def.params.maxLoad, base.params.maxLoad);
    EXPECT_EQ(def.params.tailPercentile, base.params.tailPercentile);
    EXPECT_EQ(def.traits.memPressure, base.traits.memPressure);
}

TEST(WorkloadRegistry, TimeValuesAcceptUnitSuffixes)
{
    // qos is canonically milliseconds: 300us = 0.3 ms.
    EXPECT_DOUBLE_EQ(
        makeWorkloadFromSpec("memcached:qos=300us").params.qosTargetMs,
        0.3);
    EXPECT_DOUBLE_EQ(
        makeWorkloadFromSpec("memcached:qos=2ms").params.qosTargetMs,
        2.0);
    EXPECT_DOUBLE_EQ(
        makeWorkloadFromSpec("websearch:qos=1s").params.qosTargetMs,
        1000.0);
    // think is canonically seconds.
    EXPECT_DOUBLE_EQ(
        makeWorkloadFromSpec("websearch:think=500ms").params.thinkTime,
        0.5);
    // Plain numbers stay in the canonical unit.
    EXPECT_DOUBLE_EQ(
        makeWorkloadFromSpec("websearch:think=1.5").params.thinkTime,
        1.5);
}

TEST(WorkloadRegistry, TailMultiplierScalesTheZipfExponent)
{
    const double base = webSearchWorkload().params.demand.zipfExponent;
    EXPECT_DOUBLE_EQ(makeWorkloadFromSpec("websearch:tail=2.0")
                         .params.demand.zipfExponent,
                     base * 2.0);
}

TEST(WorkloadRegistry, SyntheticFamilyIsFullyDeclarative)
{
    const LcWorkloadDef def = makeWorkloadFromSpec(
        "synthetic:ipcbig=1.4,ipcsmall=0.6,insn=5e6,qos=20ms,"
        "load=500,closed=1,think=1s,zipf=1000,zipfexp=0.2");
    EXPECT_EQ(def.params.name, "synthetic");
    EXPECT_DOUBLE_EQ(def.params.demand.ipcBig, 1.4);
    EXPECT_DOUBLE_EQ(def.params.demand.ipcSmall, 0.6);
    EXPECT_DOUBLE_EQ(def.params.demand.meanComputeInsn, 5e6);
    EXPECT_DOUBLE_EQ(def.params.qosTargetMs, 20.0);
    EXPECT_DOUBLE_EQ(def.params.maxLoad, 500.0);
    EXPECT_EQ(def.params.mode, ArrivalMode::ClosedLoop);
    EXPECT_DOUBLE_EQ(def.params.thinkTime, 1.0);
    EXPECT_EQ(def.params.demand.zipfRanks, 1000u);
    EXPECT_DOUBLE_EQ(def.params.demand.zipfExponent, 0.2);
    // Defaults hold for unset keys.
    EXPECT_EQ(makeWorkloadFromSpec("synthetic").params.mode,
              ArrivalMode::OpenLoop);
}

TEST(WorkloadRegistry, RejectsUnknownKeysWithTheSchemaEnumerated)
{
    try {
        makeWorkloadFromSpec("memcached:nope=1");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown key 'nope'"), std::string::npos);
        EXPECT_NE(msg.find("'memcached' parameters:"),
                  std::string::npos);
        EXPECT_NE(msg.find("qos="), std::string::npos);
        EXPECT_NE(msg.find("stall="), std::string::npos);
    }
}

TEST(WorkloadRegistry, RejectsUnknownWorkloadsWithTheCatalog)
{
    try {
        makeWorkloadFromSpec("mysql:qos=1");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown workload 'mysql'"),
                  std::string::npos);
        EXPECT_NE(msg.find("registered workloads"), std::string::npos);
        EXPECT_NE(msg.find("memcached"), std::string::npos);
        EXPECT_NE(msg.find("websearch"), std::string::npos);
        EXPECT_NE(msg.find("synthetic"), std::string::npos);
    }
}

TEST(WorkloadRegistry, RejectsMalformedAndOutOfRangeValues)
{
    EXPECT_THROW(makeWorkloadFromSpec(""), FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:"), FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:qos"), FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:qos="), FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:qos=banana"),
                 FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:qos=1h"), FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:qos=0"), FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:stall=3"),
                 FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:stall=1us"),
                 FatalError); // suffix on a unitless key
    EXPECT_THROW(makeWorkloadFromSpec("memcached:qos=1,qos=2"),
                 FatalError); // duplicate key
    EXPECT_THROW(makeWorkloadFromSpec("synthetic:zipf=0.5"),
                 FatalError); // integer key
    EXPECT_THROW(makeWorkloadFromSpec("synthetic:closed=2"),
                 FatalError); // boolean key
    EXPECT_TRUE(isWorkloadSpec("memcached:qos=300us,stall=0.5"));
    EXPECT_FALSE(isWorkloadSpec("memcached:qos=banana"));
    EXPECT_FALSE(isWorkloadSpec("mysql"));
}

TEST(WorkloadRegistry, CatalogTextListsEverything)
{
    const std::string catalog =
        WorkloadRegistry::instance().catalogText();
    EXPECT_NE(catalog.find("memcached"), std::string::npos);
    EXPECT_NE(catalog.find("websearch"), std::string::npos);
    EXPECT_NE(catalog.find("synthetic"), std::string::npos);
    EXPECT_NE(catalog.find("alias: web-search"), std::string::npos);
    EXPECT_NE(catalog.find("qos="), std::string::npos);
    EXPECT_NE(catalog.find("tuned bucket"), std::string::npos);
}

TEST(WorkloadRegistry, SplitWorkloadListKeepsInSpecCommas)
{
    const auto specs = splitWorkloadList(
        "memcached:qos=300us,stall=0.5,websearch;synthetic:insn=2e6");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0], "memcached:qos=300us,stall=0.5");
    EXPECT_EQ(specs[1], "websearch");
    EXPECT_EQ(specs[2], "synthetic:insn=2e6");
    const auto bare = splitWorkloadList("memcached,websearch");
    ASSERT_EQ(bare.size(), 2u);
    EXPECT_EQ(bare[0], "memcached");
    EXPECT_EQ(bare[1], "websearch");
}

TEST(WorkloadRegistry, LcWorkloadByNameIsARegistryDelegate)
{
    expectSameDef(lcWorkloadByName("memcached"), memcachedWorkload());
    expectSameDef(lcWorkloadByName("memcached:qos=8"),
                  makeWorkloadFromSpec("memcached:qos=8"));
    EXPECT_THROW(lcWorkloadByName("mysql"), FatalError);
}

} // namespace
} // namespace hipster
