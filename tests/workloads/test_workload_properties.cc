/**
 * @file
 * Parameterized property tests over the workload models: tail
 * latency must be monotone in offered load for any fixed
 * configuration, monotone (non-increasing) in capacity for any fixed
 * load, and the batch kernels must respect the compute/memory-bound
 * frequency-scaling contract across the whole SPEC catalog.
 */

#include <gtest/gtest.h>

#include "experiments/oracle.hh"
#include "workloads/apps.hh"
#include "workloads/batch.hh"

namespace hipster
{
namespace
{

/** (workload, config) pairs swept for monotonicity. */
struct MonotoneCase
{
    const char *workload;
    const char *config;

    friend std::ostream &
    operator<<(std::ostream &os, const MonotoneCase &c)
    {
        return os << c.workload << "_" << c.config;
    }
};

class TailMonotonicity : public ::testing::TestWithParam<MonotoneCase>
{
  protected:
    Millis
    tailAt(Fraction load) const
    {
        OracleOptions options;
        options.warmup = 4.0;
        options.measure = 12.0;
        HetCmpOracle oracle(Platform::junoR1(),
                            lcWorkloadByName(GetParam().workload),
                            options);
        return oracle
            .measure(load, parseCoreConfig(GetParam().config, 0.65))
            .tailLatency;
    }
};

TEST_P(TailMonotonicity, TailRisesWithLoad)
{
    // Sample a coarse load staircase; the tail at the top must
    // clearly exceed the tail at the bottom (intermediate noise is
    // tolerated, the overall trend must hold).
    const Millis low = tailAt(0.15);
    const Millis mid = tailAt(0.50);
    const Millis high = tailAt(0.85);
    EXPECT_GT(high, low) << "tail must grow from 15% to 85% load";
    EXPECT_GT(mid + high, 2.0 * low);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TailMonotonicity,
    ::testing::Values(MonotoneCase{"memcached", "2B-1.15"},
                      MonotoneCase{"memcached", "2B2S-0.60"},
                      MonotoneCase{"memcached", "2B-0.60"},
                      MonotoneCase{"websearch", "2B-1.15"},
                      MonotoneCase{"websearch", "2B2S-0.90"}),
    [](const auto &info) {
        std::string name = std::string(info.param.workload) + "_" +
                           info.param.config;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/** Capacity monotonicity: bigger configs never raise the tail much. */
class CapacityMonotonicity
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CapacityMonotonicity, MoreCapacityNeverMuchWorse)
{
    const char *workload = GetParam();
    OracleOptions options;
    options.warmup = 4.0;
    options.measure = 12.0;
    HetCmpOracle oracle(Platform::junoR1(), lcWorkloadByName(workload),
                        options);
    // A strict capability chain at a mid load.
    const Fraction load = 0.45;
    const char *chain[] = {"2S-0.65", "4S-0.65", "2B-0.90", "2B2S-1.15"};
    Millis prev = 1e18;
    for (const char *label : chain) {
        const Millis tail =
            oracle.measure(load, parseCoreConfig(label, 0.65))
                .tailLatency;
        // Allow 25% noise headroom, but the staircase must descend.
        EXPECT_LT(tail, prev * 1.25) << label;
        prev = std::min(prev, tail);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, CapacityMonotonicity,
                         ::testing::Values("memcached", "websearch"));

/** Batch kernel contract across the whole SPEC catalog. */
class SpecKernelContract : public ::testing::TestWithParam<BatchKernel>
{
};

TEST_P(SpecKernelContract, IpsPositiveEverywhere)
{
    const BatchKernel &kernel = GetParam();
    for (GHz freq : {0.60, 0.90, 1.15}) {
        EXPECT_GT(BatchWorkload::kernelIps(kernel, CoreType::Big, freq,
                                           1.15),
                  0.0);
    }
    EXPECT_GT(BatchWorkload::kernelIps(kernel, CoreType::Small, 0.65,
                                       0.65),
              0.0);
}

TEST_P(SpecKernelContract, FrequencySensitivityMatchesMemIntensity)
{
    const BatchKernel &kernel = GetParam();
    const Ips full =
        BatchWorkload::kernelIps(kernel, CoreType::Big, 1.15, 1.15);
    const Ips low =
        BatchWorkload::kernelIps(kernel, CoreType::Big, 0.60, 1.15);
    // Expected speed ratio from the blend model.
    const double expected =
        (kernel.memIntensity * 1.15 +
         (1.0 - kernel.memIntensity) * 0.60) /
        1.15;
    EXPECT_NEAR(low / full, expected, 1e-9) << kernel.name;
    // Memory-bound kernels lose less from the downclock.
    if (kernel.memIntensity > 0.8) {
        EXPECT_GT(low / full, 0.9);
    }
    if (kernel.memIntensity < 0.1) {
        EXPECT_LT(low / full, 0.6);
    }
}

TEST_P(SpecKernelContract, BigCoreBeatsSmallCore)
{
    const BatchKernel &kernel = GetParam();
    const Ips big =
        BatchWorkload::kernelIps(kernel, CoreType::Big, 1.15, 1.15);
    const Ips small =
        BatchWorkload::kernelIps(kernel, CoreType::Small, 0.65, 0.65);
    EXPECT_GT(big, small) << kernel.name;
}

TEST_P(SpecKernelContract, ContentionOnlyEverSlowsDown)
{
    const BatchKernel &kernel = GetParam();
    ContentionModel contention;
    std::vector<ClusterPressure> pressure(2);
    pressure[0].batch = 2.0;
    pressure[0].lc = 0.5;
    pressure[1].batch = 1.0;
    for (ClusterId cluster : {0u, 1u}) {
        const double factor = contention.batchIpcFactor(
            pressure, cluster, kernel.memIntensity);
        EXPECT_GT(factor, 0.0) << kernel.name;
        EXPECT_LE(factor, 1.0) << kernel.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Catalog, SpecKernelContract,
                         ::testing::ValuesIn(SpecCatalog::all()),
                         [](const auto &info) {
                             return info.param.name;
                         });

/** Load-scale invariance: the reported throughput of a scaled-down
 * replica matches the unscaled one within noise. */
class LoadScaleInvariance : public ::testing::TestWithParam<double>
{
};

TEST_P(LoadScaleInvariance, ReportedThroughputIndependentOfScale)
{
    const double scale = GetParam();
    LcAppParams params;
    params.name = "scaletest";
    params.maxLoad = 2000.0;
    params.loadScale = scale;
    params.qosTargetMs = 50.0;
    params.tailPercentile = 95.0;
    params.demand.meanComputeInsn = 1e6;
    params.demand.cvCompute = 0.5;
    params.demand.ipcBig = 1.0;
    params.demand.ipcSmall = 0.5;

    LatencyCriticalApp app(params, 3);
    app.configure({{2e9, 1.0, 0}, {2e9, 1.0, 1}}, 0.0);
    double completed_rate = 0.0;
    const int intervals = 30;
    for (int k = 0; k < intervals; ++k) {
        const auto stats = app.runInterval(k, k + 1, 0.5);
        completed_rate += stats.throughput;
    }
    completed_rate /= intervals;
    // Offered (reported) is 1000 RPS regardless of the scale.
    EXPECT_NEAR(completed_rate, 1000.0, 1000.0 * 0.10)
        << "scale=" << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, LoadScaleInvariance,
                         ::testing::Values(1.0, 0.5, 0.2, 0.1));

} // namespace
} // namespace hipster
