/**
 * @file
 * Locale-independence tests for common/json_number — the formatter
 * and parser behind the perf harness's JSON baselines. A process
 * running under a comma-decimal locale (de_DE style) used to emit
 * "3,14" via printf-family formatting and fail to re-read its own
 * baseline via strtod; these tests force such a locale (through a
 * custom numpunct facet, since the container ships only C-family
 * locales) and require byte-identical behaviour. Non-finite values
 * must be rejected at emit time: JSON has no NaN/Infinity literals.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <limits>
#include <locale>
#include <sstream>
#include <string>

#include "common/json_number.hh"
#include "common/logging.hh"

namespace hipster
{
namespace
{

/** numpunct facet with ',' decimal point and '.' thousands grouping —
 * the de_DE shape — so the test does not depend on which locales the
 * host has generated. */
class CommaDecimal : public std::numpunct<char>
{
  protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

/**
 * Scoped hostile-locale environment: installs the comma-decimal
 * facet as the global C++ locale (which freshly constructed streams
 * pick up) and, when the host has a real comma-decimal locale,
 * switches the C locale too (which printf/strtod honor). Restores
 * both on destruction.
 */
class HostileLocale
{
  public:
    HostileLocale()
        : previousGlobal_(std::locale()),
          previousC_(std::setlocale(LC_NUMERIC, nullptr))
    {
        std::locale::global(
            std::locale(std::locale::classic(), new CommaDecimal));
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
              "fr_FR"}) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr) {
                cLocaleSwitched_ = true;
                break;
            }
        }
    }

    ~HostileLocale()
    {
        std::locale::global(previousGlobal_);
        std::setlocale(LC_NUMERIC, previousC_.c_str());
    }

    bool cLocaleSwitched() const { return cLocaleSwitched_; }

  private:
    std::locale previousGlobal_;
    std::string previousC_;
    bool cLocaleSwitched_ = false;
};

TEST(JsonNumber, FormatsWithPointUnderHostileLocale)
{
    HostileLocale hostile;
    // Default-constructed streams now group and comma under the
    // hostile global locale — the very bug the formatter avoids.
    std::ostringstream grouped;
    grouped << 1234567;
    ASSERT_EQ(grouped.str(), "1.234.567")
        << "hostile locale facet not active";

    EXPECT_EQ(formatJsonNumber(3.25), "3.25");
    EXPECT_EQ(formatJsonNumber(0.1), "0.1");
    EXPECT_EQ(formatJsonNumber(-17.5), "-17.5");
    EXPECT_EQ(formatJsonNumber(std::uint64_t{1234567}), "1234567");
    EXPECT_EQ(formatJsonNumber(std::uint64_t{0}), "0");

    if (hostile.cLocaleSwitched()) {
        // Sanity: printf really would have written a comma here.
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%g", 3.25);
        EXPECT_EQ(std::string(buffer), "3,25");
    }
}

TEST(JsonNumber, ParsesWithPointUnderHostileLocale)
{
    HostileLocale hostile;
    std::size_t pos = 0;
    double value = 0.0;
    ASSERT_TRUE(parseJsonNumber("3.25,", pos, value));
    EXPECT_EQ(value, 3.25);
    EXPECT_EQ(pos, 4u); // stops at the ',' — not a decimal comma

    pos = 0;
    ASSERT_TRUE(parseJsonNumber("-1.5e3}", pos, value));
    EXPECT_EQ(value, -1500.0);
    EXPECT_EQ(pos, 6u);
}

TEST(JsonNumber, RoundTripsExactDoubles)
{
    for (const double v :
         {0.0, 1.0, -1.0, 0.1, 2.1314633449999998, 1e-300, 1e300,
          3.0261857143668268e-05, 36000.0,
          std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::max()}) {
        const std::string text = formatJsonNumber(v);
        std::size_t pos = 0;
        double back = 0.0;
        ASSERT_TRUE(parseJsonNumber(text, pos, back)) << text;
        EXPECT_EQ(pos, text.size()) << text;
        EXPECT_EQ(back, v) << text; // bitwise, not approximate
    }
}

TEST(JsonNumber, RejectsNonFiniteAtEmit)
{
    EXPECT_THROW(
        formatJsonNumber(std::numeric_limits<double>::quiet_NaN()),
        FatalError);
    EXPECT_THROW(
        formatJsonNumber(std::numeric_limits<double>::infinity()),
        FatalError);
    EXPECT_THROW(
        formatJsonNumber(-std::numeric_limits<double>::infinity()),
        FatalError);
}

TEST(JsonNumber, RejectsNonJsonSpellings)
{
    // from_chars would happily read these; JSON must not.
    for (const std::string text :
         {"nan", "inf", "Infinity", "NaN", "-inf", "+1.5", ".5", "",
          "true", "e5"}) {
        std::size_t pos = 0;
        double value = 0.0;
        EXPECT_FALSE(parseJsonNumber(text, pos, value)) << text;
        EXPECT_EQ(pos, 0u) << text; // pos untouched on failure
    }
    // Overflowing literals fail instead of saturating to infinity.
    std::size_t pos = 0;
    double value = 0.0;
    EXPECT_FALSE(parseJsonNumber("1e400", pos, value));
    EXPECT_EQ(pos, 0u);
}

TEST(JsonNumber, AcceptsBaselineStyleNumbers)
{
    // Shapes the perf harness has historically written with %.17g —
    // old baselines must keep parsing after the formatter switch.
    const struct
    {
        const char *text;
        double expected;
    } cases[] = {
        {"2.1314633449999998", 2.1314633449999998},
        {"3.0261857143668268e-05", 3.0261857143668268e-05},
        {"1e+06", 1e6},
        {"240", 240.0},
        {"-0.5", -0.5},
    };
    for (const auto &c : cases) {
        std::size_t pos = 0;
        double value = 0.0;
        ASSERT_TRUE(parseJsonNumber(c.text, pos, value)) << c.text;
        EXPECT_EQ(value, c.expected) << c.text;
    }
}

} // namespace
} // namespace hipster
