/**
 * @file
 * Tests for the logging / error-reporting facility.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace hipster
{
namespace
{

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        fatal("bad value: ", 42);
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value: 42");
    }
}

TEST(Logging, FatalConcatenatesMixedTypes)
{
    try {
        fatal("x=", 1.5, " y=", "z");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "x=1.5 y=z");
    }
}

TEST(Logging, LevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_NO_THROW(warn("warning ", 1));
    EXPECT_NO_THROW(inform("info ", 2));
    setLogLevel(before);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(HIPSTER_ASSERT(1 + 1 == 2, "math works"));
}

TEST(LoggingDeath, AssertAbortsOnFalse)
{
    EXPECT_DEATH(HIPSTER_ASSERT(false, "must fail with value ", 7),
                 "must fail with value 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(HIPSTER_PANIC("internal corruption at ", 3),
                 "internal corruption at 3");
}

} // namespace
} // namespace hipster
