/**
 * @file
 * Unit tests for common/thread_pool: task completion, result and
 * exception propagation through futures, graceful destruction (queue
 * drained, no deadlock), and submit-after-shutdown rejection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace hipster
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto boom = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_EQ(ok.get(), 7);
    try {
        boom.get();
        FAIL() << "expected exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task failed");
    }
}

TEST(ThreadPool, ZeroThreadsClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks)
{
    // More tasks than workers, each non-trivial: destruction right
    // after submission must still run every task (futures from a
    // drained pool would otherwise throw broken_promise).
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([&counter] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++counter;
            }));
        }
        // Pool destroyed here with most tasks still queued.
    }
    EXPECT_EQ(counter.load(), 32);
    for (auto &f : futures)
        EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, ManyWorkersIdleDestructionDoesNotDeadlock)
{
    // Regression guard for the classic lost-wakeup deadlock: workers
    // blocked on the condition variable must all observe shutdown.
    for (int round = 0; round < 10; ++round) {
        ThreadPool pool(8);
        pool.submit([] {}).get();
    }
    SUCCEED();
}

TEST(ThreadPool, TasksSubmittedFromTasks)
{
    // A task enqueueing follow-up work must not deadlock even on a
    // single worker.
    ThreadPool pool(1);
    auto outer = pool.submit([&pool] { return pool.submit([] { return 5; }); });
    EXPECT_EQ(outer.get().get(), 5);
}

TEST(ThreadPool, ExceptionDuringDrainReachesTheFuture)
{
    // Regression guard for the drain path: a task that throws while
    // the destructor is draining the queue must deliver its exception
    // through the future (not std::terminate, not broken_promise),
    // and tasks queued after it must still run.
    std::atomic<int> after{0};
    std::future<void> boom;
    std::future<void> tail;
    {
        ThreadPool pool(1);
        // Block the single worker so everything below stays queued
        // until destruction begins the drain.
        auto gate = pool.submit([] {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        });
        boom = pool.submit(
            [] { throw std::runtime_error("mid-drain failure"); });
        tail = pool.submit([&after] { ++after; });
        (void)gate;
        // Pool destroyed while the worker still sleeps in `gate`, so
        // boom and tail are guaranteed to drain during shutdown.
    }
    EXPECT_EQ(after.load(), 1);
    try {
        boom.get();
        FAIL() << "expected the drained task's exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "mid-drain failure");
    }
    EXPECT_NO_THROW(tail.get());
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    EXPECT_LE(ThreadPool::defaultJobs(), ThreadPool::kMaxThreads);
}

TEST(ThreadPool, RejectsUnreasonableThreadCounts)
{
    // A CLI parser wrapping "-1" to 2^64-1 must be rejected cleanly
    // instead of dying in std::vector::reserve / thread creation.
    EXPECT_THROW(ThreadPool(ThreadPool::kMaxThreads + 1), FatalError);
    EXPECT_THROW(ThreadPool(static_cast<std::size_t>(-1)), FatalError);
}

} // namespace
} // namespace hipster
