/**
 * @file
 * Tests for the CSV writer and reader, including the guarantee that
 * anything CsvWriter emits parses back identically with CsvReader.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"

namespace hipster
{
namespace
{

TEST(Csv, HeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"a", "b"});
    csv.row({"1", "2"});
    csv.add(3).add("x").endRow();
    EXPECT_EQ(out.str(), "a,b\n1,2\n3,x\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(Csv, QuotesFieldsWithCommas)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"hello, world", "plain"});
    EXPECT_EQ(out.str(), "\"hello, world\",plain\n");
}

TEST(Csv, EscapesEmbeddedQuotes)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"say \"hi\""});
    EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"line1\nline2"});
    EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(Csv, NumericFormatting)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.add(1.5).add(42).endRow();
    EXPECT_EQ(out.str(), "1.5,42\n");
}

TEST(Csv, UnopenablePathThrows)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x/y.csv"), FatalError);
}

TEST(Csv, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/hipster_csv_test.csv";
    {
        CsvWriter csv(path);
        csv.header({"t", "v"});
        csv.row({"0", "1.0"});
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "t,v\n0,1.0\n");
}

TEST(CsvReaderTest, ParsesHeaderAndRows)
{
    std::istringstream in("t,v\n0,1.5\n1,2.5\n");
    CsvReader reader(in);
    ASSERT_EQ(reader.columns(), (std::vector<std::string>{"t", "v"}));
    ASSERT_EQ(reader.rows(), 2u);
    EXPECT_EQ(reader.columnIndex("t"), 0u);
    EXPECT_EQ(reader.columnIndex("v"), 1u);
    EXPECT_EQ(reader.cell(0, 1), "1.5");
    EXPECT_DOUBLE_EQ(reader.number(1, 1), 2.5);
    EXPECT_THROW(reader.columnIndex("nope"), FatalError);
    EXPECT_THROW(reader.row(2), FatalError);
    EXPECT_THROW(reader.cell(0, 5), FatalError);
}

TEST(CsvReaderTest, UnquotesRfc4180Fields)
{
    std::istringstream in(
        "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n\"line1\nline2\",x\n");
    CsvReader reader(in);
    ASSERT_EQ(reader.rows(), 2u);
    EXPECT_EQ(reader.cell(0, 0), "hello, world");
    EXPECT_EQ(reader.cell(0, 1), "say \"hi\"");
    EXPECT_EQ(reader.cell(1, 0), "line1\nline2");
}

TEST(CsvReaderTest, WriterOutputAlwaysParsesBack)
{
    // The writer/reader contract: any fields, however awkward, make
    // the round trip unchanged.
    const std::vector<std::string> nasty = {
        "plain", "with,comma", "with \"quotes\"", "multi\nline",
        "carriage\rreturn", ""};
    std::ostringstream out;
    CsvWriter writer(out);
    writer.header({"c0", "c1", "c2", "c3", "c4", "c5"});
    writer.row(nasty);
    std::istringstream in(out.str());
    CsvReader reader(in);
    ASSERT_EQ(reader.rows(), 1u);
    for (std::size_t c = 0; c < nasty.size(); ++c)
        EXPECT_EQ(reader.cell(0, c), nasty[c]) << c;
}

TEST(CsvReaderTest, ToleratesCrlfAndMissingFinalNewline)
{
    std::istringstream in("t,v\r\n0,1\r\n1,2");
    CsvReader reader(in);
    ASSERT_EQ(reader.rows(), 2u);
    EXPECT_DOUBLE_EQ(reader.number(1, 1), 2.0);
}

TEST(CsvReaderTest, MalformedInputFailsFast)
{
    {
        std::istringstream in("");
        EXPECT_THROW(CsvReader{in}, FatalError); // no header at all
    }
    {
        std::istringstream in("a,b\n1\n"); // ragged row
        EXPECT_THROW(CsvReader{in}, FatalError);
    }
    {
        std::istringstream in("a,b\n\"unterminated,1\n");
        EXPECT_THROW(CsvReader{in}, FatalError);
    }
    {
        std::istringstream in("a,b\nx\"y,1\n"); // stray quote
        EXPECT_THROW(CsvReader{in}, FatalError);
    }
    {
        std::istringstream in("a,b\n1\r2,3\n"); // CR mid-field
        EXPECT_THROW(CsvReader{in}, FatalError);
    }
    {
        std::istringstream in("a,b\r1,2\r"); // CR-only line endings
        EXPECT_THROW(CsvReader{in}, FatalError);
    }
    EXPECT_THROW(CsvReader("/nonexistent-dir/x/y.csv"), FatalError);
}

TEST(CsvReaderTest, NumberRejectsNonNumericCells)
{
    std::istringstream in("a\nbanana\n42\n");
    CsvReader reader(in);
    EXPECT_THROW(reader.number(0, 0), FatalError);
    EXPECT_DOUBLE_EQ(reader.number(1, 0), 42.0);
}

TEST(CsvReaderTest, HeaderOnlyFileHasZeroRows)
{
    std::istringstream in("a,b\n");
    CsvReader reader(in);
    EXPECT_EQ(reader.rows(), 0u);
    EXPECT_EQ(reader.columns().size(), 2u);
}

} // namespace
} // namespace hipster
