/**
 * @file
 * Tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"

namespace hipster
{
namespace
{

TEST(Csv, HeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"a", "b"});
    csv.row({"1", "2"});
    csv.add(3).add("x").endRow();
    EXPECT_EQ(out.str(), "a,b\n1,2\n3,x\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(Csv, QuotesFieldsWithCommas)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"hello, world", "plain"});
    EXPECT_EQ(out.str(), "\"hello, world\",plain\n");
}

TEST(Csv, EscapesEmbeddedQuotes)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"say \"hi\""});
    EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"line1\nline2"});
    EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(Csv, NumericFormatting)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.add(1.5).add(42).endRow();
    EXPECT_EQ(out.str(), "1.5,42\n");
}

TEST(Csv, UnopenablePathThrows)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x/y.csv"), FatalError);
}

TEST(Csv, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/hipster_csv_test.csv";
    {
        CsvWriter csv(path);
        csv.header({"t", "v"});
        csv.row({"0", "1.0"});
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "t,v\n0,1.0\n");
}

} // namespace
} // namespace hipster
