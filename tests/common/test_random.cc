/**
 * @file
 * Unit + property tests for the RNG and distribution samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.hh"

namespace hipster
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        ASSERT_GE(v, -3.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(13);
    std::vector<int> counts(6, 0);
    const int n = 60000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(0, 5)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 6.0, n / 6.0 * 0.1);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(15);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42u);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng rng(21);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GT(rng.exponential(0.1), 0.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale)
{
    Rng rng(25);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMeanCvMatchesRequestedMoments)
{
    Rng rng(27);
    const double mean = 5.0, cv = 1.5;
    double sum = 0.0, sq = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.lognormalMeanCv(mean, cv);
        sum += v;
        sq += v * v;
    }
    const double m = sum / n;
    const double var = sq / n - m * m;
    EXPECT_NEAR(m, mean, mean * 0.02);
    EXPECT_NEAR(std::sqrt(var) / m, cv, cv * 0.05);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng rng(29);
    EXPECT_DOUBLE_EQ(rng.lognormalMeanCv(3.0, 0.0), 3.0);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(31);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler zipf(100, 0.9);
    double sum = 0.0;
    for (std::size_t r = 1; r <= 100; ++r)
        sum += zipf.pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RankOneIsMostPopular)
{
    ZipfSampler zipf(1000, 1.0);
    EXPECT_GT(zipf.pmf(1), zipf.pmf(2));
    EXPECT_GT(zipf.pmf(2), zipf.pmf(100));
}

TEST(Zipf, AlphaZeroIsUniform)
{
    ZipfSampler zipf(10, 0.0);
    for (std::size_t r = 1; r <= 10; ++r)
        EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-9);
}

TEST(Zipf, SampleFrequenciesFollowPmf)
{
    ZipfSampler zipf(50, 0.8);
    Rng rng(33);
    std::vector<int> counts(51, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (std::size_t r = 1; r <= 5; ++r) {
        EXPECT_NEAR(counts[r] / static_cast<double>(n), zipf.pmf(r),
                    0.01);
    }
}

TEST(Zipf, SampleWithinRange)
{
    ZipfSampler zipf(7, 1.2);
    Rng rng(35);
    for (int i = 0; i < 1000; ++i) {
        const std::size_t r = zipf.sample(rng);
        ASSERT_GE(r, 1u);
        ASSERT_LE(r, 7u);
    }
}

TEST(Zipf, RejectsEmptyAndNegative)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), FatalError);
    EXPECT_THROW(ZipfSampler(10, -0.5), FatalError);
}

} // namespace
} // namespace hipster
