/**
 * @file
 * Tests for SampleStats, OnlineStats and Histogram.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"

namespace hipster
{
namespace
{

TEST(SampleStats, EmptyReturnsZeros)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(95.0), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SampleStats, SingleValue)
{
    SampleStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 42.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStats, KnownPercentiles)
{
    SampleStats s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_NEAR(s.percentile(50.0), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(95.0), 95.05, 1e-9);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
}

TEST(SampleStats, PercentileInterpolates)
{
    SampleStats s;
    s.add(10.0);
    s.add(20.0);
    EXPECT_NEAR(s.percentile(50.0), 15.0, 1e-9);
    EXPECT_NEAR(s.percentile(25.0), 12.5, 1e-9);
}

TEST(SampleStats, OrderInsensitive)
{
    SampleStats a, b;
    const std::vector<double> values{5, 1, 9, 3, 7};
    for (double v : values)
        a.add(v);
    for (auto it = values.rbegin(); it != values.rend(); ++it)
        b.add(*it);
    EXPECT_DOUBLE_EQ(a.percentile(50.0), b.percentile(50.0));
    EXPECT_DOUBLE_EQ(a.min(), b.min());
    EXPECT_DOUBLE_EQ(a.max(), b.max());
}

TEST(SampleStats, QueriesInterleavedWithAdds)
{
    SampleStats s;
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.max(), 1.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    s.add(3.0);
    EXPECT_NEAR(s.percentile(50.0), 3.0, 1e-9);
}

TEST(SampleStats, StddevMatchesFormula)
{
    SampleStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(SampleStats, ClearResets)
{
    SampleStats s;
    s.add(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(SampleStats, RejectsOutOfRangePercentile)
{
    SampleStats s;
    s.add(1.0);
    EXPECT_DEATH(s.percentile(101.0), "percentile");
}

TEST(OnlineStats, MatchesSampleStatsMoments)
{
    SampleStats exact;
    OnlineStats online;
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.normal(3.0, 2.0);
        exact.add(v);
        online.add(v);
    }
    EXPECT_NEAR(online.mean(), exact.mean(), 1e-9);
    EXPECT_NEAR(online.stddev(), exact.stddev(), 1e-6);
    EXPECT_DOUBLE_EQ(online.min(), exact.min());
    EXPECT_DOUBLE_EQ(online.max(), exact.max());
}

TEST(OnlineStats, MergeEqualsSequential)
{
    OnlineStats a, b, all;
    Rng rng(6);
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.uniform(0, 10);
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Histogram, CountsBucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.5);
    h.add(9.9);
    h.add(10.0);
    h.add(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, BucketEdges)
{
    Histogram h(2.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(0), 2.5);
    EXPECT_DOUBLE_EQ(h.bucketLo(3), 3.5);
    EXPECT_DOUBLE_EQ(h.bucketHi(3), 4.0);
}

TEST(Histogram, ApproximatePercentile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add(i % 100 + 0.5);
    EXPECT_NEAR(h.percentile(50.0), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(95.0), 95.0, 2.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 10), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
    EXPECT_THROW(Histogram(5.0, 1.0, 3), FatalError);
}

TEST(Histogram, ClearResets)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(2.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucket(0), 0u);
}

} // namespace
} // namespace hipster
