/**
 * @file
 * Tests for the ASCII table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace hipster
{
namespace
{

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.newRow().cell("alpha").cell(1.5);
    table.newRow().cell("b").cell(22.25, 2);
    const std::string s = table.str();
    EXPECT_NE(s.find("| name  | value |"), std::string::npos);
    EXPECT_NE(s.find("| alpha | 1.50  |"), std::string::npos);
    EXPECT_NE(s.find("| b     | 22.25 |"), std::string::npos);
}

TEST(TextTable, PercentCell)
{
    TextTable table({"p"});
    table.newRow().percentCell(0.183);
    EXPECT_NE(table.str().find("18.3%"), std::string::npos);
}

TEST(TextTable, IntegerCell)
{
    TextTable table({"n"});
    table.newRow().cell(static_cast<long long>(12345));
    EXPECT_NE(table.str().find("12345"), std::string::npos);
}

TEST(TextTable, MissingCellsRenderEmpty)
{
    TextTable table({"a", "b"});
    table.newRow().cell("only");
    const std::string s = table.str();
    EXPECT_NE(s.find("| only |"), std::string::npos);
}

TEST(TextTable, RowCountTracksRows)
{
    TextTable table({"x"});
    EXPECT_EQ(table.rows(), 0u);
    table.newRow().cell("1");
    table.newRow().cell("2");
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, RejectsEmptyHeaders)
{
    EXPECT_THROW(TextTable({}), FatalError);
}

TEST(TextTableDeath, RejectsTooManyCells)
{
    TextTable table({"a"});
    table.newRow().cell("1");
    EXPECT_DEATH(table.cell("2"), "more cells");
}

TEST(TextTable, MultiByteCellsStayAligned)
{
    // The mean-±-CI reports put multi-byte UTF-8 glyphs in cells;
    // padding must go by display width, not bytes, or the column
    // borders drift.
    TextTable table({"metric", "value"});
    table.newRow().cell("qos").cell("96.4 \u00b15.1%");
    table.newRow().cell("energy").cell("497");
    std::istringstream lines(table.str());
    std::string line;
    std::size_t expected = 0;
    while (std::getline(lines, line)) {
        std::size_t width = 0;
        for (unsigned char c : line)
            width += (c & 0xC0) != 0x80;
        if (expected == 0)
            expected = width;
        EXPECT_EQ(width, expected) << line;
        EXPECT_EQ(line.back(), line.front() == '+' ? '+' : '|');
    }
}

TEST(Format, FixedAndPercent)
{
    EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
    EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(formatPercent(0.5), "50.0%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

} // namespace
} // namespace hipster
