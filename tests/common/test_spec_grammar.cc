/**
 * @file
 * Grammar-level tests for common/spec_grammar: the shared key=value
 * machinery behind the workload/platform (and now dispatcher)
 * registries. Focus: time-suffix parsing edges — overflowing
 * magnitudes (`duration=99999999999999s`) and negative time values
 * (`think=-5ms`) must fail fast with the usual catalog-style error
 * instead of wrapping, saturating or silently passing a permissive
 * schema range.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/spec_grammar.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{
namespace
{

/** A deliberately permissive schema: the grammar itself — not the
 * schema range — must reject overflow and negative time. */
std::vector<SpecParamInfo>
permissiveSchema()
{
    return {
        {"duration", "run length", 60.0, -1e30, 1e30, false, false,
         ParamUnit::TimeSec},
        {"think", "think time", 2000.0, -1e30, 1e30, false, false,
         ParamUnit::TimeMs},
        {"gain", "plain number", 1.0, -1e30, 1e30, false, false,
         ParamUnit::None},
        {"count", "an integer", 4.0, 0.0, 100.0, true, false,
         ParamUnit::None},
        {"flag", "a flag", 0.0, 0.0, 1.0, false, true,
         ParamUnit::None},
    };
}

SpecParamSet
parse(const std::string &spec)
{
    SpecParamSet out;
    parseSpecParams("test", spec, specHead(spec), permissiveSchema(),
                    out);
    return out;
}

std::string
errorOf(const std::string &spec)
{
    try {
        parse(spec);
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

TEST(SpecGrammarTime, SuffixesNormalizeExactly)
{
    EXPECT_DOUBLE_EQ(parse("t:duration=90").get("duration", 0.0), 90.0);
    EXPECT_DOUBLE_EQ(parse("t:duration=1500ms").get("duration", 0.0),
                     1.5);
    EXPECT_DOUBLE_EQ(parse("t:duration=250us").get("duration", 0.0),
                     250e-6);
    EXPECT_DOUBLE_EQ(parse("t:think=1.5s").get("think", 0.0), 1500.0);
    EXPECT_DOUBLE_EQ(parse("t:think=300us").get("think", 0.0), 0.3);
}

TEST(SpecGrammarTime, OverflowingMagnitudeIsRejected)
{
    // 1e14 seconds is ~3 million years: far beyond the supported
    // time range even under this schema's huge maxValue.
    const std::string error = errorOf("t:duration=99999999999999s");
    EXPECT_NE(error.find("beyond the supported time range"),
              std::string::npos)
        << error;
    EXPECT_THROW(parse("t:duration=1e13"), FatalError);
    EXPECT_THROW(parse("t:think=99999999999999s"), FatalError);
}

TEST(SpecGrammarTime, RepresentationOverflowIsRejected)
{
    // strtod saturates 1e400 to +inf with ERANGE; the grammar must
    // name the overflow, not report a range violation.
    const std::string error = errorOf("t:duration=1e400");
    EXPECT_NE(error.find("overflows"), std::string::npos) << error;
    EXPECT_THROW(parse("t:gain=1e400"), FatalError);
    EXPECT_THROW(parse("t:gain=-1e400"), FatalError);
}

TEST(SpecGrammarTime, NegativeTimeIsRejected)
{
    const std::string error = errorOf("t:think=-5ms");
    EXPECT_NE(error.find("negative duration"), std::string::npos)
        << error;
    EXPECT_THROW(parse("t:duration=-1"), FatalError);
    EXPECT_THROW(parse("t:duration=-0.5s"), FatalError);
    // Plain (unitless) parameters still accept negatives.
    EXPECT_DOUBLE_EQ(parse("t:gain=-5").get("gain", 0.0), -5.0);
}

TEST(SpecGrammarTime, NonFiniteSpellingsAreRejected)
{
    EXPECT_THROW(parse("t:duration=nan"), FatalError);
    EXPECT_THROW(parse("t:duration=inf"), FatalError);
    EXPECT_THROW(parse("t:gain=nan"), FatalError);
}

TEST(SpecGrammar, CoreGrammarStillEnforced)
{
    EXPECT_THROW(parse("t:duration=abc"), FatalError);     // not a number
    EXPECT_THROW(parse("t:gain=5s"), FatalError);          // no unit
    EXPECT_THROW(parse("t:duration=5min"), FatalError);    // bad suffix
    EXPECT_THROW(parse("t:unknown=1"), FatalError);        // unknown key
    EXPECT_THROW(parse("t:gain=1,gain=2"), FatalError);    // duplicate
    EXPECT_THROW(parse("t:count=1.5"), FatalError);        // integer
    EXPECT_THROW(parse("t:flag=2"), FatalError);           // boolean
    EXPECT_THROW(parse("t:"), FatalError);                 // empty tail
    EXPECT_THROW(parse("t:gain"), FatalError);             // no '='
}

TEST(SpecGrammar, ErrorsEnumerateTheSchema)
{
    const std::string error = errorOf("t:unknown=1");
    EXPECT_NE(error.find("'t' parameters:"), std::string::npos)
        << error;
    EXPECT_NE(error.find("duration="), std::string::npos) << error;
}

TEST(SpecGrammar, UnknownKeyNamesTheRejectingStage)
{
    // Composed specs (hazard:a+b, trace pipelines) carry several
    // schemas; the unknown-key error must say which stage — kind and
    // name — refused the key, not just echo the spec text.
    const std::string error = errorOf("t:unknown=1");
    EXPECT_NE(error.find("unknown key 'unknown'"), std::string::npos)
        << error;
    EXPECT_NE(error.find("rejected by test 't'"), std::string::npos)
        << error;
}

TEST(SpecGrammarTime, RegistryEndToEndFailsFast)
{
    // Through a real registry consumer: the workload grammar rides on
    // parseSpecParams, so the same edges fail fast with catalogs.
    EXPECT_THROW(makeWorkloadFromSpec("websearch:think=-5ms"),
                 FatalError);
    EXPECT_THROW(
        makeWorkloadFromSpec("memcached:qos=99999999999999s"),
        FatalError);
    EXPECT_THROW(makeWorkloadFromSpec("memcached:qos=1e400"),
                 FatalError);
}

} // namespace
} // namespace hipster
